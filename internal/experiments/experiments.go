// Package experiments declares the paper's regenerable experiments in
// the exp registry, replacing the hardcoded step table the httpperf
// command used to carry. Blank-importing the package populates the
// registry; each entry's Generate drives scenarios through a core.Sweep
// built from the session (averaging depth, seed families, parallelism,
// metrics collection), and Render prints the paper-style text table.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/report"
)

// sweepFor derives the core.Sweep an experiment's scenarios run under,
// stamping the experiment name on collected metrics records.
func sweepFor(s *exp.Session, name string) core.Sweep {
	return core.Sweep{
		Runs:       s.Runs,
		Seeds:      s.Seeds,
		Parallel:   s.Parallel,
		Experiment: name,
		Collector:  s.Collector,
		Stats:      s.Stats,
	}
}

// ModemPair bundles both server profiles' modem experiments.
type ModemPair struct {
	Jigsaw, Apache []core.ModemRow
}

func renderMainTable(w io.Writer, _ *exp.Session, d any) error {
	report.MainTable(w, d.(core.Table))
	return nil
}

func init() {
	exp.Register(exp.Experiment{
		Name: "1", Title: "Table 1 - Tested network environments",
		Generate: func(*exp.Session) (any, error) { return nil, nil },
		Render: func(w io.Writer, _ *exp.Session, _ any) error {
			report.Environments(w)
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "3", Title: "Table 3 - Initial LAN cache revalidation test",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "3").Table3(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Table3(w, d.([]core.Table3Row))
			return nil
		},
	})
	for _, n := range []int{4, 5, 6, 7, 8, 9} {
		n := n
		exp.Register(exp.Experiment{
			Name:  fmt.Sprint(n),
			Title: fmt.Sprintf("Table %d - protocol comparison (server × environment)", n),
			Generate: func(s *exp.Session) (any, error) {
				return sweepFor(s, fmt.Sprint(n)).MainTable(n, s.Site)
			},
			Render: renderMainTable,
		})
	}
	for _, n := range []int{10, 11} {
		n := n
		exp.Register(exp.Experiment{
			Name:  fmt.Sprint(n),
			Title: fmt.Sprintf("Table %d - product browsers over PPP", n),
			Generate: func(s *exp.Session) (any, error) {
				return sweepFor(s, fmt.Sprint(n)).BrowserTable(n, s.Site)
			},
			Render: renderMainTable,
		})
	}
	exp.Register(exp.Experiment{
		Name: "modem", Title: "§8.2.1 modem-compression experiment",
		Generate: func(s *exp.Session) (any, error) {
			sw := sweepFor(s, "modem")
			j, err := sw.ModemTable(s.Site, httpserver.ProfileJigsaw)
			if err != nil {
				return nil, err
			}
			a, err := sw.ModemTable(s.Site, httpserver.ProfileApache)
			if err != nil {
				return nil, err
			}
			return ModemPair{Jigsaw: j, Apache: a}, nil
		},
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			v := d.(ModemPair)
			report.Modem(w, v.Jigsaw, "Jigsaw")
			fmt.Fprintln(w)
			report.Modem(w, v.Apache, "Apache")
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "tagcase", Title: "HTML tag case vs deflate ratio",
		Generate: func(*exp.Session) (any, error) { return core.TagCaseTable() },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.TagCase(w, d.([]core.TagCaseRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "css", Title: "Figure 1 + whole-page CSS replacement",
		Generate: func(s *exp.Session) (any, error) { return s.Site.CSSReplacements(), nil },
		Render: func(w io.Writer, s *exp.Session, _ any) error {
			report.CSS(w, s.Site)
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "png", Title: "GIF->PNG / animated GIF->MNG conversion",
		Generate: func(s *exp.Session) (any, error) { return s.Site.ConvertImages() },
		Render: func(w io.Writer, s *exp.Session, _ any) error {
			return report.PNG(w, s.Site)
		},
	})
	exp.Register(exp.Experiment{
		Name: "nagle", Title: "Nagle interaction ablation",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "nagle").NagleTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Nagle(w, d.([]core.NagleRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "reset", Title: "Server early-close scenario",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "reset").ResetTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Reset(w, d.([]core.ResetRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "flush", Title: "Buffer/flush-timer ablation",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "flush").FlushAblation(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Flush(w, d.([]core.FlushRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "range", Title: "Range-probe revalidation after a site revision",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "range").RangeTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Range(w, d.([]core.RangeRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "headers", Title: "Request-redundancy (compact encoding) estimate",
		Generate: func(s *exp.Session) (any, error) { return core.HeaderRedundancy(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.HeaderRedundancy(w, d.([]core.HeaderRedundancyRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "cwnd", Title: "Slow-start initial window ablation",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "cwnd").CwndTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Cwnd(w, d.([]core.CwndRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "proxy", Title: "Shared caching proxy tier (PPP last mile, WAN origin)",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "proxy").ProxyTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Proxy(w, d.([]core.ProxyRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "faults", Title: "Fault injection and recovery (PPP and WAN, scripted faults)",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "faults").FaultsTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Faults(w, d.([]core.FaultRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "variance", Title: "Seed-variance experiment: per-cell 95% CIs and latency quantiles (clean vs burst loss)",
		Generate: func(s *exp.Session) (any, error) {
			return sweepFor(s, "variance").VarianceTable(s.Site)
		},
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Variance(w, d.([]core.VarianceRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "mux", Title: "Multiplexed protocol modes: mux, server push, burst vs the paper's four",
		Generate: func(s *exp.Session) (any, error) { return sweepFor(s, "mux").MuxTable(s.Site) },
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Mux(w, d.(*core.MuxData))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "mux-faults", Title: "Framed-protocol fault injection: mux error handling and stream recovery",
		Generate: func(s *exp.Session) (any, error) {
			return sweepFor(s, "mux-faults").MuxFaultsTable(s.Site)
		},
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.MuxFaults(w, d.([]core.MuxFaultRow))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "blame", Title: "Causal delay attribution: per-request blame and critical path (paper §4)",
		Generate: func(s *exp.Session) (any, error) {
			return sweepFor(s, "blame").BlameTable(s.Site)
		},
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.Blame(w, d.(*core.BlameData))
			return nil
		},
	})
	exp.Register(exp.Experiment{
		Name: "sweep", Title: "Per-run structured metrics sweep (protocol modes × environments)",
		Skip: true,
		Generate: func(s *exp.Session) (any, error) {
			// The sweep gathers structured per-run metrics over the main
			// protocol × environment matrix; it is not one of the paper's
			// tables, so it runs only when requested by name.
			col := exp.NewCollector()
			modes := []httpclient.Mode{
				httpclient.ModeHTTP10,
				httpclient.ModeHTTP11Serial,
				httpclient.ModeHTTP11Pipelined,
				httpclient.ModeHTTP11PipelinedDeflate,
			}
			for ei, env := range []netem.Environment{netem.LAN, netem.WAN, netem.PPP} {
				ms := modes
				if env == netem.PPP {
					ms = ms[1:] // the paper has no HTTP/1.0 runs over PPP
				}
				for mi, mode := range ms {
					sw := sweepFor(s, "sweep")
					sw.Collector = col
					sc := core.Scenario{
						Server: httpserver.ProfileApache, Client: mode,
						Env: env, Workload: httpclient.FirstTime,
						Seed: 12000 + uint64(ei)*100 + uint64(mi),
					}
					if _, err := sw.RunAveraged(sc, s.Site); err != nil {
						return nil, err
					}
				}
			}
			recs := col.Records()
			if s.Collector != nil {
				for _, m := range recs {
					s.Collector.Add(m)
				}
			}
			return recs, nil
		},
		Render: func(w io.Writer, _ *exp.Session, d any) error {
			report.MetricsTable(w, d.([]exp.Metrics))
			return nil
		},
	})
}
