package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

// TestEngineDifferential is the determinism contract of the event-engine
// redesign: every registered experiment must render byte-identical
// tables — and emit a byte-identical metrics CSV — on the timer-wheel
// and on the legacy heap engine, at serial and wide parallelism alike.
// The CSV includes the per-run sim_events count, so the engines must
// agree not only on output bytes but on the exact number of events
// fired.
func TestEngineDifferential(t *testing.T) {
	type variant struct {
		engine   sim.Engine
		parallel int
	}
	variants := []variant{
		{sim.EngineWheel, 1},
		{sim.EngineWheel, 8},
		{sim.EngineHeap, 1},
		{sim.EngineHeap, 8},
	}
	for _, name := range exp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			type result struct {
				label string
				table []byte
				csv   []byte
			}
			var results []result
			for _, v := range variants {
				prev := sim.SetDefaultEngine(v.engine)
				s := session(t, v.parallel)
				s.Runs = 1
				table := render(t, s, name)
				var csv bytes.Buffer
				if err := s.Collector.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				sim.SetDefaultEngine(prev)
				results = append(results, result{
					label: fmt.Sprintf("%v/parallel=%d", v.engine, v.parallel),
					table: table,
					csv:   csv.Bytes(),
				})
			}
			ref := results[0]
			for _, r := range results[1:] {
				if !bytes.Equal(ref.table, r.table) {
					t.Errorf("rendered table differs: %s vs %s:\n%s\nvs\n%s",
						ref.label, r.label, ref.table, r.table)
				}
				if !bytes.Equal(ref.csv, r.csv) {
					t.Errorf("metrics CSV differs: %s vs %s", ref.label, r.label)
				}
			}
		})
	}
}
