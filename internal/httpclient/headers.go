package httpclient

import "repro/internal/httpmsg"

// Style selects the request-header profile. Request verbosity matters:
// the paper's libwww robot sent ~190-byte requests while the product
// browsers of Tables 10 and 11 sent considerably more.
type Style int

// Request header styles.
const (
	// StyleRobot11 is the tuned libwww 5.1 robot: "very careful not to
	// generate unnecessary headers", ~190 bytes with validators.
	StyleRobot11 Style = iota
	// StyleRobot10 is the old libwww 4.1D robot with the era's verbose
	// Accept lists.
	StyleRobot10
	// StyleNetscape mimics Netscape Communicator 4.0b5.
	StyleNetscape
	// StyleMSIE mimics Microsoft Internet Explorer 4.0b1.
	StyleMSIE
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleRobot11:
		return "libwww/5.1"
	case StyleRobot10:
		return "libwww/4.1D"
	case StyleNetscape:
		return "Netscape"
	case StyleMSIE:
		return "MSIE"
	}
	return "unknown"
}

// buildRequest composes a request in the given style.
func buildRequest(style Style, method, target, host, proto string) *httpmsg.Request {
	req := &httpmsg.Request{Method: method, Target: target, Proto: proto}
	h := &req.Header
	switch style {
	case StyleRobot11:
		h.Add("Host", host)
		h.Add("Accept", "*/*")
		h.Add("User-Agent", "libwww-robot/5.1")
	case StyleRobot10:
		h.Add("Accept", "text/html")
		h.Add("Accept", "image/gif; q=1.0, image/x-xbitmap; q=0.8, image/jpeg; q=0.8")
		h.Add("Accept", "application/postscript, application/x-dvi, message/rfc822")
		h.Add("Accept", "video/mpeg, audio/basic, text/plain, */*; q=0.3")
		h.Add("Accept-Language", "en, fr; q=0.5, de; q=0.5")
		h.Add("User-Agent", "W3CCommandLine/4.1D libwww/4.1D")
		h.Add("From", "webmaster@w3.org")
	case StyleNetscape:
		h.Add("Connection", "Keep-Alive")
		h.Add("User-Agent", "Mozilla/4.0b5 [en] (WinNT; I)")
		h.Add("Host", host)
		h.Add("Accept", "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, image/png, */*")
		h.Add("Accept-Language", "en")
		h.Add("Accept-Charset", "iso-8859-1,*,utf-8")
	case StyleMSIE:
		h.Add("Accept", "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, */*")
		h.Add("Accept-Language", "en-us")
		h.Add("UA-pixels", "1280x1024")
		h.Add("UA-color", "color8")
		h.Add("UA-OS", "Windows NT")
		h.Add("UA-CPU", "x86")
		h.Add("User-Agent", "Mozilla/4.0 (compatible; MSIE 4.0b1; Windows NT)")
		h.Add("Host", host)
		h.Add("Connection", "Keep-Alive")
	}
	return req
}
