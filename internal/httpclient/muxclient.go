package httpclient

import (
	"strconv"
	"strings"

	"repro/internal/htmlparse"
	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/tcpsim"
)

// muxStream is the client-side state of one mux stream: either a
// request the robot opened itself, or a server push.
type muxStream struct {
	it        workItem // valid once claimed
	claimed   bool     // a work item owns this stream
	pushed    bool     // server-initiated (PUSH_PROMISE)
	cancelled bool     // we RST_STREAMed a push we didn't want
	delivered bool     // response handed to handleResponse
	done      bool     // endStream seen

	status int
	header httpmsg.Header
	body   []byte
	span   obs.SpanID // pushed-span timeline row (0 when not pushed)
	path   string     // :path of a push, before any item claims it
}

// muxConn is the robot's single framed multiplexed connection
// (ModeMux / ModeMuxPush). Unlike clientConn there is no pipelining
// buffer, no flush timer, and no per-request watchdog: the session's
// scheduler owns interleaving, and recovery re-dials the whole session.
type muxConn struct {
	r        *Robot
	conn     *tcpsim.Conn
	sess     *mux.Session
	dead     bool
	closing  bool // we finished and sent FIN; peer close is expected
	promised map[string]*mux.Stream
}

// dialMux opens the mux connection and performs the session handshake
// (connection preface + SETTINGS, advertising push when configured).
func (r *Robot) dialMux() *muxConn {
	mc := &muxConn{r: r, promised: make(map[string]*mux.Stream)}
	r.mux = mc
	opts := r.cfg.TCP
	opts.NoDelay = true // the frame scheduler owns batching
	mc.conn = r.host.Dial(r.serverHost, r.serverPort, opts, &tcpsim.Callbacks{
		Data:      mc.onData,
		PeerClose: mc.onPeerClose,
		Error:     mc.onError,
		Close:     mc.onClose,
	})
	r.result.SocketsUsed++
	if live := 1; live > r.result.MaxSimultaneousConns {
		r.result.MaxSimultaneousConns = live
	}
	sess := mux.NewClient(func(b []byte) { mc.conn.Write(b) })
	sess.EnablePush = r.cfg.MuxPush
	sess.OnHeaders = mc.onHeaders
	sess.OnData = mc.onStreamData
	sess.OnPushPromise = mc.onPushPromise
	sess.OnError = mc.onSessionError
	if b := r.cfg.Obs; b != nil {
		id := mc.conn.ObsID()
		sess.OnFrameSent = func(t mux.FrameType, stream uint32, n int) {
			b.MuxFrame(id, t.String(), stream, n)
		}
		sess.OnStall = func(st *mux.Stream, conn bool) {
			var sid uint32
			if st != nil {
				sid = st.ID
			}
			b.FlowStall(id, sid, conn)
		}
	}
	mc.sess = sess
	sess.Start()
	return mc
}

// muxDispatch drains the robot's queue onto the mux connection: one
// stream per work item, except items a server push already answered.
func (r *Robot) muxDispatch() {
	mc := r.mux
	if mc == nil || mc.dead {
		if mc != nil && mc.dead {
			return // a redial is pending via muxFail → dispatch
		}
		mc = r.dialMux()
	}
	for len(r.queue) > 0 {
		it := r.queue[0]
		r.queue = r.queue[1:]
		mc.request(it)
	}
}

// request issues one work item: claim a matching outstanding push
// promise, or open a stream of our own.
func (mc *muxConn) request(it workItem) {
	r := mc.r
	if st, ok := mc.promised[it.path]; ok && it.method == "GET" && !it.conditional {
		// The server already volunteered this object: adopt the pushed
		// stream instead of asking again.
		delete(mc.promised, it.path)
		ms := st.UserData.(*muxStream)
		ms.claimed = true
		ms.it = it
		r.issued++
		r.result.PushUsed++
		if ms.done {
			mc.complete(ms)
		}
		return
	}
	req := r.buildItemRequest(it)
	st := mc.sess.OpenStream(muxFields(req, r.serverHost), true, 0)
	st.UserData = &muxStream{it: it, claimed: true}
	r.issued++
	r.cfg.Obs.SpanWritten(it.span, mc.conn.ObsID())
}

// muxFields lowers an HTTP/1.x request to a mux header block:
// pseudo-headers first, then the style's fields minus the
// connection-level ones the framing layer owns.
func muxFields(req *httpmsg.Request, authority string) []mux.Field {
	fields := []mux.Field{
		{Name: ":method", Value: req.Method},
		{Name: ":path", Value: req.Target},
		{Name: ":authority", Value: authority},
	}
	for _, f := range req.Header.Fields() {
		name := strings.ToLower(f.Name)
		if name == "host" || name == "connection" {
			continue
		}
		fields = append(fields, mux.Field{Name: name, Value: f.Value})
	}
	return fields
}

func (mc *muxConn) onData(c *tcpsim.Conn, data []byte) {
	mc.r.lastData = mc.r.sim.Now()
	mc.sess.Feed(data)
}

func (mc *muxConn) onHeaders(st *mux.Stream, fields []mux.Field, end bool) {
	ms, ok := st.UserData.(*muxStream)
	if !ok {
		return
	}
	for _, f := range fields {
		switch {
		case f.Name == ":status":
			ms.status, _ = strconv.Atoi(f.Value)
		case !strings.HasPrefix(f.Name, ":"):
			ms.header.Add(f.Name, f.Value)
		}
	}
	if ms.pushed {
		mc.r.cfg.Obs.SpanFirstByte(ms.span)
	} else {
		mc.r.cfg.Obs.SpanFirstByte(ms.it.span)
	}
	if end {
		ms.done = true
		if ms.claimed {
			mc.complete(ms)
		}
	}
}

func (mc *muxConn) onStreamData(st *mux.Stream, p []byte, end bool) {
	r := mc.r
	ms, ok := st.UserData.(*muxStream)
	if !ok {
		return
	}
	if ms.cancelled {
		// DATA that raced our RST_STREAM: delivered, never wanted.
		r.result.PushWastedBytes += int64(len(p))
		return
	}
	ms.body = append(ms.body, p...)
	if ms.claimed && ms.it.isHTML && ms.status == 200 {
		// Parse the page as it streams so inline objects start
		// (or claim their pushes) before the document completes.
		r.discoverLinks(p)
	}
	if end {
		ms.done = true
		if ms.claimed {
			mc.complete(ms)
		}
	}
}

// complete hands a finished stream's response to the shared
// HTTP/1.x response handler after the per-response CPU charge.
func (mc *muxConn) complete(ms *muxStream) {
	r := mc.r
	ms.delivered = true
	resp := &httpmsg.Response{
		Proto:      httpmsg.Proto11,
		StatusCode: ms.status,
		Reason:     httpmsg.StatusText(ms.status),
		Header:     ms.header,
		Body:       ms.body,
	}
	it := ms.it
	r.cfg.Obs.SpanDone(it.span, ms.status, int64(len(ms.body)))
	if ms.pushed {
		r.cfg.Obs.SpanDone(ms.span, ms.status, int64(len(ms.body)))
	}
	r.cpu.Run(r.cfg.PerRequestCPU, func() {
		r.handleResponse(nil, it, resp)
	})
}

// onPushPromise accepts or cancels a server push. A promise the cache
// can already satisfy is refused immediately (the client would rather
// revalidate); anything pushed after the refusal is waste.
func (mc *muxConn) onPushPromise(parent, promised *mux.Stream, fields []mux.Field) {
	r := mc.r
	path := ""
	for _, f := range fields {
		if f.Name == ":path" {
			path = f.Value
		}
	}
	ms := &muxStream{pushed: true, path: path}
	promised.UserData = ms
	ms.span = r.cfg.Obs.SpanPushed("GET", path, mc.conn.ObsID())
	if _, ok := r.cache.Get(path); ok {
		ms.cancelled = true
		mc.sess.RstStream(promised)
		return
	}
	mc.promised[path] = promised
}

func (mc *muxConn) onSessionError(err error) {
	if !mc.dead {
		mc.conn.Abort()
		mc.r.muxFail(mc)
	}
}

func (mc *muxConn) onPeerClose(c *tcpsim.Conn) {
	if mc.closing || mc.r.finished {
		return // our FIN went first; this is the server's half closing
	}
	err := mc.sess.CloseCheck()
	if !mc.dead {
		mc.conn.CloseWrite()
	}
	mc.r.muxFailErr(mc, err != nil)
}

func (mc *muxConn) onError(c *tcpsim.Conn, err error) {
	mc.r.muxFail(mc)
}

func (mc *muxConn) onClose(c *tcpsim.Conn) {
	if !mc.closing {
		mc.r.muxFail(mc)
	}
}

// finish is the graceful end of the fetch: account pushes that were
// never claimed, fold the session's counters into the result, and
// half-close.
func (mc *muxConn) finish() {
	if mc.closing || mc.dead {
		return
	}
	mc.closing = true
	for _, st := range mc.sess.Streams() {
		ms, ok := st.UserData.(*muxStream)
		if !ok {
			continue
		}
		if ms.pushed && !ms.claimed && !ms.cancelled {
			// Promised, delivered (fully or partly), never wanted.
			mc.r.result.PushWastedBytes += int64(len(ms.body))
		}
	}
	mc.fillStats()
	mc.conn.CloseWrite()
}

// fillStats folds the session counters into the fetch result. Called
// exactly once per session (graceful finish or failure); a redialled
// session accumulates on top.
func (mc *muxConn) fillStats() {
	st := mc.sess.Stats
	mc.r.result.StreamsOpened += st.StreamsOpened
	mc.r.result.PushPromised += st.PushPromised
	mc.r.result.HeaderBytesSaved += st.HeaderBytesSaved
	mc.r.result.FlowControlStalls += st.FlowControlStalls
}

// muxFail retires a failed mux connection: undelivered claimed items
// are re-queued (a fresh session will re-issue them), partial bodies
// and orphaned pushes become waste, and dispatch redials.
func (r *Robot) muxFail(mc *muxConn) { r.muxFailErr(mc, true) }

func (r *Robot) muxFailErr(mc *muxConn, isError bool) {
	if mc.dead || mc.closing {
		return
	}
	mc.dead = true
	if r.mux == mc {
		r.mux = nil
	}
	p := r.cfg.Recovery
	if isError {
		r.result.Errors++
		if p != nil {
			r.consecFails++
			if b := p.Backoff(r.consecFails); b > 0 {
				r.backoffUntil = r.sim.Now().Add(b)
				r.cfg.Obs.RetryBackoff(b, r.consecFails)
			}
		}
	}
	mc.fillStats()
	for _, st := range mc.sess.Streams() {
		ms, ok := st.UserData.(*muxStream)
		if !ok || !ms.claimed || ms.delivered {
			continue
		}
		r.result.WastedBytes += int64(len(ms.body))
		if p != nil && !r.recovering {
			r.recovering = true
			r.recoverFrom = r.sim.Now()
		}
		it := ms.it
		if p != nil && (!idempotent(it.method) || !p.Allow(r.result.Retried)) {
			r.issued--
			r.result.RequestsFailed++
			r.result.Aborted = true
			if it.isHTML {
				r.htmlPending = false
			}
			continue
		}
		it.retried = true
		r.result.Retried++
		r.issued--
		it.span = r.cfg.Obs.SpanQueued(it.method, it.path, true)
		r.queue = append(r.queue, it)
		if it.isHTML {
			r.extractor = htmlparse.LinkExtractor{}
		}
	}
	r.dispatch()
}
