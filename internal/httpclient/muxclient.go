package httpclient

import (
	"strconv"
	"strings"

	"repro/internal/htmlparse"
	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// muxStream is the client-side state of one mux stream: either a
// request the robot opened itself, or a server push.
type muxStream struct {
	it        workItem // valid once claimed
	claimed   bool     // a work item owns this stream
	pushed    bool     // server-initiated (PUSH_PROMISE)
	cancelled bool     // we RST_STREAMed a push we didn't want
	delivered bool     // response handed to handleResponse
	done      bool     // endStream seen

	status int
	header httpmsg.Header
	body   []byte
	span   obs.SpanID // pushed-span timeline row (0 when not pushed)
	path   string     // :path of a push, before any item claims it

	// lastData is the last time this stream itself made progress
	// (headers or body), and rxMark the connection's received-byte
	// count at that moment. The per-stream watchdog combines them to
	// find individually wedged streams on an otherwise healthy
	// session: silence alone is normal on a slow shared link (a fair
	// round-robin scheduler can take many seconds per cycle), but a
	// whole window of traffic reaching OTHER streams while this one
	// got nothing means the server has abandoned it.
	lastData sim.Time
	rxMark   int64
}

// muxConn is the robot's single framed multiplexed connection
// (ModeMux / ModeMuxPush). Unlike clientConn there is no pipelining
// buffer and no flush timer: the session's scheduler owns
// interleaving. Recovery (when armed) runs at two granularities: a
// per-stream watchdog tears down individually silent streams with
// RST_STREAM and re-issues them on the same session, and a
// whole-session failure — abort, GOAWAY, or total silence — re-dials
// the connection and replays incomplete streams, degrading to
// HTTP/1.1 pipelining after repeated failures.
type muxConn struct {
	r        *Robot
	conn     *tcpsim.Conn
	sess     *mux.Session
	dead     bool
	closing  bool // we finished and sent FIN; peer close is expected
	promised map[string]*mux.Stream
	watchdog sim.TimerHandle
	rxTotal  int64 // transport bytes received, for per-stream progress marks
}

// dialMux opens the mux connection and performs the session handshake
// (connection preface + SETTINGS, advertising push when configured).
func (r *Robot) dialMux() *muxConn {
	mc := &muxConn{r: r, promised: make(map[string]*mux.Stream)}
	r.mux = mc
	opts := r.cfg.TCP
	opts.NoDelay = true // the frame scheduler owns batching
	mc.conn = r.host.Dial(r.serverHost, r.serverPort, opts, &tcpsim.Callbacks{
		Data:      mc.onData,
		PeerClose: mc.onPeerClose,
		Error:     mc.onError,
		Close:     mc.onClose,
	})
	r.result.SocketsUsed++
	if live := 1; live > r.result.MaxSimultaneousConns {
		r.result.MaxSimultaneousConns = live
	}
	sess := mux.NewClient(func(b []byte) { mc.conn.Write(b) })
	sess.EnablePush = r.cfg.MuxPush
	sess.FIFO = r.cfg.MuxFIFO
	sess.OnHeaders = mc.onHeaders
	sess.OnData = mc.onStreamData
	sess.OnPushPromise = mc.onPushPromise
	sess.OnRstStream = mc.onRstStream
	sess.OnGoaway = mc.onGoaway
	sess.OnError = mc.onSessionError
	if b := r.cfg.Obs; b != nil {
		id := mc.conn.ObsID()
		sess.OnFrameSent = func(t mux.FrameType, stream uint32, n int) {
			b.MuxFrame(id, t.String(), stream, n)
		}
		sess.OnStall = func(st *mux.Stream, conn bool) {
			var sid uint32
			if st != nil {
				sid = st.ID
			}
			b.FlowStall(id, sid, conn)
		}
	}
	mc.sess = sess
	sess.Start()
	return mc
}

// muxDispatch drains the robot's queue onto the mux connection: one
// stream per work item, except items a server push already answered.
func (r *Robot) muxDispatch() {
	mc := r.mux
	if mc == nil || mc.dead {
		if mc != nil && mc.dead {
			return // a redial is pending via muxFail → dispatch
		}
		mc = r.dialMux()
	}
	for len(r.queue) > 0 {
		it := r.queue[0]
		r.queue = r.queue[1:]
		mc.request(it)
	}
}

// request issues one work item: claim a matching outstanding push
// promise, or open a stream of our own.
func (mc *muxConn) request(it workItem) {
	r := mc.r
	if st, ok := mc.promised[it.path]; ok && it.method == "GET" && !it.conditional {
		// The server already volunteered this object: adopt the pushed
		// stream instead of asking again.
		delete(mc.promised, it.path)
		ms := st.UserData.(*muxStream)
		ms.claimed = true
		ms.it = it
		r.issued++
		r.result.PushUsed++
		if ms.done {
			mc.complete(ms)
		}
		return
	}
	req := r.buildItemRequest(it)
	st := mc.sess.OpenStream(muxFields(req, r.serverHost), true, 0)
	st.UserData = &muxStream{it: it, claimed: true, lastData: r.sim.Now(), rxMark: mc.rxTotal}
	r.issued++
	r.cfg.Obs.SpanWritten(it.span, mc.conn.ObsID())
	mc.armWatchdog()
}

// muxFields lowers an HTTP/1.x request to a mux header block:
// pseudo-headers first, then the style's fields minus the
// connection-level ones the framing layer owns.
func muxFields(req *httpmsg.Request, authority string) []mux.Field {
	fields := []mux.Field{
		{Name: ":method", Value: req.Method},
		{Name: ":path", Value: req.Target},
		{Name: ":authority", Value: authority},
	}
	for _, f := range req.Header.Fields() {
		name := strings.ToLower(f.Name)
		if name == "host" || name == "connection" {
			continue
		}
		fields = append(fields, mux.Field{Name: name, Value: f.Value})
	}
	return fields
}

func (mc *muxConn) onData(c *tcpsim.Conn, data []byte) {
	mc.r.lastData = mc.r.sim.Now()
	mc.rxTotal += int64(len(data))
	mc.sess.Feed(data)
	mc.armWatchdog()
}

func (mc *muxConn) onHeaders(st *mux.Stream, fields []mux.Field, end bool) {
	ms, ok := st.UserData.(*muxStream)
	if !ok {
		return
	}
	ms.lastData = mc.r.sim.Now()
	ms.rxMark = mc.rxTotal
	for _, f := range fields {
		switch {
		case f.Name == ":status":
			ms.status, _ = strconv.Atoi(f.Value)
		case !strings.HasPrefix(f.Name, ":"):
			ms.header.Add(f.Name, f.Value)
		}
	}
	if ms.pushed {
		mc.r.cfg.Obs.SpanFirstByte(ms.span)
	} else {
		mc.r.cfg.Obs.SpanFirstByte(ms.it.span)
	}
	if end {
		ms.done = true
		if ms.claimed {
			mc.complete(ms)
		}
	}
}

func (mc *muxConn) onStreamData(st *mux.Stream, p []byte, end bool) {
	r := mc.r
	ms, ok := st.UserData.(*muxStream)
	if !ok {
		return
	}
	ms.lastData = r.sim.Now()
	ms.rxMark = mc.rxTotal
	if ms.cancelled {
		// DATA that raced our RST_STREAM: delivered, never wanted. A
		// cancelled push is push waste; a request stream the watchdog
		// tore down is plain retry waste.
		if ms.pushed {
			r.result.PushWastedBytes += int64(len(p))
		} else {
			r.result.WastedBytes += int64(len(p))
		}
		return
	}
	ms.body = append(ms.body, p...)
	if ms.claimed && ms.it.isHTML && ms.status == 200 {
		// Parse the page as it streams so inline objects start
		// (or claim their pushes) before the document completes.
		r.discoverLinks(p)
	}
	if end {
		ms.done = true
		if ms.claimed {
			mc.complete(ms)
		}
	}
}

// complete hands a finished stream's response to the shared
// HTTP/1.x response handler after the per-response CPU charge.
func (mc *muxConn) complete(ms *muxStream) {
	r := mc.r
	ms.delivered = true
	resp := &httpmsg.Response{
		Proto:      httpmsg.Proto11,
		StatusCode: ms.status,
		Reason:     httpmsg.StatusText(ms.status),
		Header:     ms.header,
		Body:       ms.body,
	}
	it := ms.it
	r.cfg.Obs.SpanDone(it.span, ms.status, int64(len(ms.body)))
	if ms.pushed {
		r.cfg.Obs.SpanDone(ms.span, ms.status, int64(len(ms.body)))
	}
	r.cpu.Run(r.cfg.PerRequestCPU, func() {
		r.handleResponse(nil, it, resp)
	})
}

// onPushPromise accepts or cancels a server push. A promise the cache
// can already satisfy is refused immediately (the client would rather
// revalidate); anything pushed after the refusal is waste.
func (mc *muxConn) onPushPromise(parent, promised *mux.Stream, fields []mux.Field) {
	r := mc.r
	path := ""
	for _, f := range fields {
		if f.Name == ":path" {
			path = f.Value
		}
	}
	ms := &muxStream{pushed: true, path: path}
	promised.UserData = ms
	ms.span = r.cfg.Obs.SpanPushed("GET", path, mc.conn.ObsID())
	if _, ok := r.cache.Get(path); ok {
		ms.cancelled = true
		mc.sess.RstStream(promised)
		return
	}
	mc.promised[path] = promised
}

// onRstStream handles a peer RST_STREAM. A pushed promise is
// invalidated — the promise entry is dropped and whatever body it
// delivered is waste, so a later request for the object goes to the
// server — and a claimed request stream is re-issued on this same
// session, budget and idempotency permitting.
func (mc *muxConn) onRstStream(st *mux.Stream) {
	r := mc.r
	ms, ok := st.UserData.(*muxStream)
	if !ok || ms.cancelled || ms.delivered {
		return // a reset racing our own teardown needs no second answer
	}
	if ms.pushed && !ms.claimed {
		r.result.StreamsReset++
		r.cfg.Obs.StreamReset(mc.conn.ObsID(), st.ID, st.ResetCode.String())
		r.result.PushWastedBytes += int64(len(ms.body))
		ms.cancelled = true
		delete(mc.promised, ms.path)
		return
	}
	if ms.claimed {
		r.result.StreamsReset++
		r.cfg.Obs.StreamReset(mc.conn.ObsID(), st.ID, st.ResetCode.String())
		mc.requeueStream(ms, true)
		r.dispatch()
	}
}

// onGoaway records the peer's session-close announcement. The close
// itself arrives as a transport event (the server tears the
// connection down right after), so stream replay happens on that
// path; a GOAWAY the peer never follows up on is cleared by the
// watchdog.
func (mc *muxConn) onGoaway(last uint32, code mux.ErrCode) {
	mc.r.result.Goaways++
	mc.r.cfg.Obs.Goaway(mc.conn.ObsID(), last, code.String())
}

// requeueStream releases a torn-down stream's work item back onto the
// robot's queue. chargeBudget distinguishes per-stream teardowns (a
// peer RST_STREAM, a watchdog reset — individual retries, counted
// against the policy's RetryBudget) from a whole-session failure,
// which is ONE fault event no matter how many streams it takes down:
// charging a 40-stream session failure 40 budget units would exhaust
// the budget before the backoff/fallback ladder — which already
// bounds session redials — ever engaged. Non-idempotent requests are
// never replayed on either path. The caller dispatches.
func (mc *muxConn) requeueStream(ms *muxStream, chargeBudget bool) {
	r := mc.r
	p := r.cfg.Recovery
	r.result.WastedBytes += int64(len(ms.body))
	if p != nil && !r.recovering {
		r.recovering = true
		r.recoverFrom = r.sim.Now()
	}
	it := ms.it
	ms.claimed = false
	ms.cancelled = true // late DATA racing the reset is waste
	if p != nil && (!idempotent(it.method) || (chargeBudget && !p.Allow(r.retryCharge))) {
		r.issued--
		r.result.RequestsFailed++
		r.result.Aborted = true
		if it.isHTML {
			r.htmlPending = false
		}
		return
	}
	it.retried = true
	r.result.Retried++
	if chargeBudget {
		r.retryCharge++
	}
	r.issued--
	it.span = r.cfg.Obs.SpanQueued(it.method, it.path, true)
	r.queue = append(r.queue, it)
	if it.isHTML {
		// The page will be re-received from the start; discard the
		// half-parsed tokenizer state. Already-discovered links stay
		// deduplicated by r.enqueued.
		r.extractor = htmlparse.LinkExtractor{}
	}
}

// outstanding reports whether any claimed stream still awaits its
// response.
func (mc *muxConn) outstanding() bool {
	for _, st := range mc.sess.Streams() {
		ms, ok := st.UserData.(*muxStream)
		if ok && ms.claimed && !ms.delivered && !st.ResetSent && !st.ResetRecv {
			return true
		}
	}
	return false
}

// armWatchdog keeps the session watchdog ticking. Unlike the HTTP/1.x
// connection's (which restarts its clock on every arrival and so only
// fires on total silence), the mux watchdog is a periodic sampler: it
// must catch a single stream starving while the rest of the session
// streams along, so it fires every RequestTimeout regardless of
// session-wide progress and onWatchdog compares each stream's own
// silence against the deadline. It runs on every data arrival, so the
// already-armed path must not allocate, and it consumes sim sequence
// numbers only when a Recovery policy is armed — fault-free runs stay
// byte-identical.
func (mc *muxConn) armWatchdog() {
	p := mc.r.cfg.Recovery
	if p == nil || p.RequestTimeout <= 0 {
		return
	}
	if mc.dead || mc.closing || !mc.outstanding() {
		mc.watchdog.Stop()
		return
	}
	if !mc.watchdog.Active() {
		mc.watchdog = mc.r.sim.ScheduleArg(p.RequestTimeout, muxWatchdogFire, mc)
	}
}

func muxWatchdogFire(a any) { a.(*muxConn).onWatchdog() }

// onWatchdog classifies RequestTimeout of silence. If the session as
// a whole made recent progress, only streams that are individually
// silent (a per-stream stall fault) are torn down with RST_STREAM and
// re-issued on this same session. A fully silent session is first
// tested for a provable flow-control deadlock — either sender wedged
// on an exhausted window that will never refill, named stream and all
// — and then aborted so recovery can redial.
func (mc *muxConn) onWatchdog() {
	r := mc.r
	p := r.cfg.Recovery
	if mc.dead || mc.closing {
		return
	}
	now := r.sim.Now()
	if since := now.Sub(r.lastData); since < p.RequestTimeout {
		requeued := false
		for _, st := range mc.sess.Streams() {
			ms, ok := st.UserData.(*muxStream)
			if !ok || !ms.claimed || ms.delivered || st.ResetSent || st.ResetRecv {
				continue
			}
			if now.Sub(ms.lastData) < p.RequestTimeout {
				continue
			}
			// Silence alone is not a stall: on a slow link a fair
			// round-robin cycle over many streams can exceed the
			// deadline. Only tear the stream down once a full
			// flow-control window of traffic reached other streams
			// while this one got nothing — a working server would have
			// scheduled it inside that much data.
			if mc.rxTotal-ms.rxMark < int64(mux.DefaultInitialWindow) {
				continue
			}
			r.result.StreamsReset++
			r.cfg.Obs.StreamReset(mc.conn.ObsID(), st.ID, "watchdog")
			mc.sess.RstStreamCode(st, mux.ErrCodeCancel)
			mc.requeueStream(ms, true)
			requeued = true
		}
		if requeued {
			r.dispatch()
		}
		mc.armWatchdog()
		return
	}
	if st, ok := mc.sess.PeerDeadlock(); ok {
		r.result.DeadlocksDetected++
		r.cfg.Obs.Deadlock(mc.conn.ObsID(), st.ID, "peer-starved")
	} else if st, conn, ok := mc.sess.FlowDeadlock(); ok {
		r.result.DeadlocksDetected++
		which := "stream-window"
		if conn {
			which = "conn-window"
		}
		r.cfg.Obs.Deadlock(mc.conn.ObsID(), st.ID, which)
	} else {
		r.result.Timeouts++
		r.cfg.Obs.ClientTimeout(mc.conn.ObsID(), p.RequestTimeout)
	}
	mc.conn.Abort()
	r.muxFail(mc)
}

func (mc *muxConn) onSessionError(err error) {
	if !mc.dead {
		mc.conn.Abort()
		mc.r.muxFail(mc)
	}
}

func (mc *muxConn) onPeerClose(c *tcpsim.Conn) {
	if mc.closing || mc.r.finished {
		return // our FIN went first; this is the server's half closing
	}
	err := mc.sess.CloseCheck()
	if !mc.dead {
		mc.conn.CloseWrite()
	}
	mc.r.muxFailErr(mc, err != nil)
}

func (mc *muxConn) onError(c *tcpsim.Conn, err error) {
	mc.r.muxFail(mc)
}

func (mc *muxConn) onClose(c *tcpsim.Conn) {
	if !mc.closing {
		mc.r.muxFail(mc)
	}
}

// finish is the graceful end of the fetch: account pushes that were
// never claimed, fold the session's counters into the result, and
// half-close.
func (mc *muxConn) finish() {
	if mc.closing || mc.dead {
		return
	}
	mc.closing = true
	mc.watchdog.Stop()
	for _, st := range mc.sess.Streams() {
		ms, ok := st.UserData.(*muxStream)
		if !ok {
			continue
		}
		if ms.pushed && !ms.claimed && !ms.cancelled {
			// Promised, delivered (fully or partly), never wanted.
			mc.r.result.PushWastedBytes += int64(len(ms.body))
		}
	}
	mc.fillStats()
	mc.conn.CloseWrite()
}

// fillStats folds the session counters into the fetch result. Called
// exactly once per session (graceful finish or failure); a redialled
// session accumulates on top. GOAWAYs this side sent (strict-validator
// rejections of server garbage) add to the peer-announced ones counted
// in onGoaway.
func (mc *muxConn) fillStats() {
	st := mc.sess.Stats
	mc.r.result.StreamsOpened += st.StreamsOpened
	mc.r.result.PushPromised += st.PushPromised
	mc.r.result.HeaderBytesSaved += st.HeaderBytesSaved
	mc.r.result.FlowControlStalls += st.FlowControlStalls
	mc.r.result.Goaways += st.GoawaysSent
}

// muxFail retires a failed mux connection: undelivered claimed items
// are re-queued (a fresh session will re-issue them), partial bodies
// and orphaned pushes become waste, and dispatch redials — or, after
// FallbackAfter consecutive session failures, continues the fetch over
// HTTP/1.1 pipelining (from which the existing ladder can degrade
// further to serial and HTTP/1.0).
func (r *Robot) muxFail(mc *muxConn) { r.muxFailErr(mc, true) }

func (r *Robot) muxFailErr(mc *muxConn, isError bool) {
	if mc.dead || mc.closing {
		return
	}
	mc.dead = true
	mc.watchdog.Stop()
	if r.mux == mc {
		r.mux = nil
	}
	p := r.cfg.Recovery
	if isError {
		r.result.Errors++
		if p != nil {
			r.consecFails++
			if b := p.Backoff(r.consecFails); b > 0 {
				r.backoffUntil = r.sim.Now().Add(b)
				r.cfg.Obs.RetryBackoff(b, r.consecFails)
			}
			if p.FallbackAfter > 0 && r.consecFails >= p.FallbackAfter {
				r.fallbackMuxDegrade()
			}
		}
	}
	mc.fillStats()
	for _, st := range mc.sess.Streams() {
		ms, ok := st.UserData.(*muxStream)
		if !ok || !ms.claimed || ms.delivered {
			continue
		}
		mc.requeueStream(ms, false)
	}
	r.dispatch()
}
