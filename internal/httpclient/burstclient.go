package httpclient

import (
	"repro/internal/httpmsg"
	"repro/internal/mux"
)

// handleBurstResponse consumes the ModeBurst page response: on a 200
// burst payload every inline object arrives as a record of the single
// aggregated response, so the whole fetch is one request/response
// exchange; on a 304 the cached page (and, by the burst contract, its
// recorded contents) revalidated in one round trip.
func (r *Robot) handleBurstResponse(it workItem, resp *httpmsg.Response) {
	body := resp.Body
	switch resp.StatusCode {
	case 200:
		r.result.Responses200++
	case 304:
		r.result.Responses304++
	default:
		r.result.ResponsesOther++
	}
	r.result.PayloadBytes += int64(len(body))

	// The burst response is the metadata for every object on the page.
	r.metaPending--
	if r.metaPending == 0 {
		r.result.MetadataSeconds = r.sim.Now().Seconds()
	}

	switch {
	case resp.StatusCode == 200 && resp.Header.Get("Content-Type") == mux.BurstContentType:
		if records, err := mux.DecodeBurst(body); err == nil {
			var links []string
			for _, rec := range records {
				if rec.Path != it.path {
					links = append(links, rec.Path)
				}
			}
			for _, rec := range records {
				e := &Entry{
					Path:         rec.Path,
					ContentType:  rec.ContentType,
					ETag:         rec.ETag,
					LastModified: rec.LastModified,
					Size:         len(rec.Body),
				}
				if rec.Path == it.path {
					e.Links = links
				}
				r.cache.Put(e)
			}
		}
	case resp.StatusCode == 304:
		// The page validated; the burst contract extends that to the
		// recorded contents, so no per-object revalidations are queued.
		if e, ok := r.cache.Get(it.path); ok {
			e.Validations++
			for _, url := range e.Links {
				if c, ok := r.cache.Get(url); ok {
					c.Validations++
				}
			}
		}
	}

	r.htmlPending = false
	r.handled++
	r.dispatch()
}
