// Package httpclient implements the simulated web client: the libwww
// robot of the paper, in its four measured configurations (HTTP/1.0 with
// parallel connections, HTTP/1.1 persistent, HTTP/1.1 pipelined, and
// pipelined with deflate transport compression), plus header/connection
// profiles approximating the product browsers of Tables 10 and 11.
//
// The pipelined client reproduces the implementation strategy the paper
// converged on: requests are buffered in a 1024-byte application buffer,
// flushed explicitly after the first (HTML) request, when the buffer
// fills, when the flush timer expires, or when the document parse
// completes; TCP_NODELAY is set; and HTML is parsed incrementally as
// response segments arrive so new request batches can be issued while the
// page is still in flight.
package httpclient

import (
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/tcpsim"
)

// Mode is a measured client configuration.
type Mode int

// Client modes.
const (
	// ModeHTTP10: HTTP/1.0, one connection per request, up to 4 in
	// parallel (Netscape's default, as used by the paper's robot).
	ModeHTTP10 Mode = iota
	// ModeHTTP11Serial: HTTP/1.1 persistent connection, requests
	// serialized, no pipelining.
	ModeHTTP11Serial
	// ModeHTTP11Pipelined: persistent connection with buffered
	// pipelining.
	ModeHTTP11Pipelined
	// ModeHTTP11PipelinedDeflate: pipelining plus Accept-Encoding:
	// deflate for the HTML.
	ModeHTTP11PipelinedDeflate
	// ModeNetscape: Netscape 4.0b5 profile — HTTP/1.0 + Keep-Alive,
	// 4 connections, verbose headers.
	ModeNetscape
	// ModeMSIE: Internet Explorer 4.0b1 profile — HTTP/1.1, 4 parallel
	// persistent connections, no pipelining, verbose headers.
	ModeMSIE
	// ModeMux: HTTP/2-style framed multiplexing over one connection —
	// concurrent streams, header compression, flow control (the
	// internal/mux layer).
	ModeMux
	// ModeMuxPush: ModeMux plus server push: the server promises and
	// pushes the page's inline objects unasked; the client cancels
	// promises it can satisfy from cache, and pushed-but-unused bytes
	// are accounted as waste.
	ModeMuxPush
	// ModeBurst: Http-Burst-style aggregation — one GET, one response
	// carrying the page and every inline object as records.
	ModeBurst
)

// String names the mode as in the paper's tables.
func (m Mode) String() string {
	switch m {
	case ModeHTTP10:
		return "HTTP/1.0"
	case ModeHTTP11Serial:
		return "HTTP/1.1"
	case ModeHTTP11Pipelined:
		return "HTTP/1.1 Pipelined"
	case ModeHTTP11PipelinedDeflate:
		return "HTTP/1.1 Pipelined w. compression"
	case ModeNetscape:
		return "Netscape Navigator"
	case ModeMSIE:
		return "Internet Explorer"
	case ModeMux:
		return "HTTP/2 Mux"
	case ModeMuxPush:
		return "HTTP/2 Mux + Push"
	case ModeBurst:
		return "HTTP/1.1 Burst"
	}
	return "unknown"
}

// Workload selects the paper's two test workloads.
type Workload int

// Workloads.
const (
	// FirstTime is the empty-cache retrieval: 43 GETs.
	FirstTime Workload = iota
	// Revalidate is the warm-cache visit: 43 cache validations.
	Revalidate
)

// String names the workload as in the tables.
func (w Workload) String() string {
	if w == Revalidate {
		return "Cache Validation"
	}
	return "First Time Retrieval"
}

// Config tunes the robot. Mode presets fill the zero fields; see
// (Mode).Config.
type Config struct {
	Mode Mode

	Proto      string // HTTP/1.0 or HTTP/1.1
	MaxConns   int    // parallel connections
	KeepAlive  bool   // reuse connections across requests
	Pipelining bool
	// AcceptDeflate advertises and decodes deflate content coding.
	AcceptDeflate bool
	Style         Style

	// Mux fetches over one framed multiplexed connection (internal/mux)
	// instead of HTTP/1.x; MuxPush additionally advertises
	// SETTINGS_ENABLE_PUSH so the server pushes inline objects. Burst
	// asks the server for a single aggregated response (Accept-Burst).
	Mux     bool
	MuxPush bool
	Burst   bool

	// BufferSize is the pipelining output buffer (paper: 1024).
	BufferSize int
	// MuxFIFO switches the mux session's DATA pump to strict
	// first-come-first-served stream order instead of (priority, id)
	// scheduling — the stream-priority ablation.
	MuxFIFO bool

	// FlushTimeout bounds how long requests sit in the buffer (paper:
	// 1s initially, 50ms in the tuned configuration).
	FlushTimeout time.Duration
	// ExplicitFirstFlush forces a flush after the first (HTML) request,
	// the application-knowledge optimization the paper added.
	ExplicitFirstFlush bool
	// NoDelay sets TCP_NODELAY (required for buffered pipelining).
	NoDelay bool

	// PerRequestCPU is client processing per response (parsing, cache
	// bookkeeping).
	PerRequestCPU time.Duration

	// RevalImagesViaHEAD validates images with HEAD instead of
	// conditional GET (the old HTTP/1.0 robot's behaviour).
	RevalImagesViaHEAD bool
	// RevalidateHTMLUnconditionally re-fetches the page body on the
	// revalidation workload (no client cache for the page, or broken
	// validators — the IE-against-Jigsaw behaviour of Table 10).
	RevalidateHTMLUnconditionally bool
	// PageOnly fetches just the page, ignoring inline resources (the
	// paper's single-GET modem-compression experiment).
	PageOnly bool
	// RevalRangeProbe, when positive, turns image revalidations into the
	// paper's "poor man's multiplexing" idiom: a conditional GET carrying
	// Range: bytes=0-(N-1), so an unchanged entity costs a 304 and a
	// changed one returns only its first N bytes (its metadata) before
	// the client decides to fetch the rest. Large changed objects then
	// cannot monopolize the pipelined connection.
	RevalRangeProbe int

	// Recovery, when non-nil, arms the fault-recovery machinery: a
	// progress watchdog per connection (RequestTimeout of silence with
	// requests outstanding aborts the connection), capped exponential
	// backoff before re-dialing after consecutive failures, a retry
	// budget, idempotency-aware re-issue (only GET/HEAD are requeued),
	// and graceful protocol degradation (mux → pipelined → serial →
	// HTTP/1.0). On a mux session the watchdog additionally runs
	// per-stream: an individually silent stream is torn down with
	// RST_STREAM and re-issued on the same session, and total silence
	// is classified (flow-control deadlock vs generic stall) before the
	// session is aborted.
	// Nil preserves the legacy behaviour exactly: no extra timers fire
	// and no RNG draws occur, so fault-free runs are byte-identical.
	Recovery *faults.Policy

	// TCP overrides connection options other than NoDelay.
	TCP tcpsim.Options

	// Obs, if non-nil, receives request lifecycle spans (queued →
	// written → first byte → done) for every work item.
	Obs *obs.Bus
}

// Config returns the preset for the mode.
func (m Mode) Config() Config {
	c := Config{
		Mode:          m,
		BufferSize:    1024,
		FlushTimeout:  50 * time.Millisecond,
		PerRequestCPU: 5 * time.Millisecond,
	}
	switch m {
	case ModeHTTP10:
		c.Proto = "HTTP/1.0"
		c.MaxConns = 4
		c.Style = StyleRobot10
		c.RevalImagesViaHEAD = true
		c.RevalidateHTMLUnconditionally = true // no persistent cache
	case ModeHTTP11Serial:
		c.Proto = "HTTP/1.1"
		c.MaxConns = 1
		c.KeepAlive = true
		c.Style = StyleRobot11
	case ModeHTTP11Pipelined:
		c.Proto = "HTTP/1.1"
		c.MaxConns = 1
		c.KeepAlive = true
		c.Pipelining = true
		c.ExplicitFirstFlush = true
		c.NoDelay = true
		c.Style = StyleRobot11
	case ModeHTTP11PipelinedDeflate:
		c.Proto = "HTTP/1.1"
		c.MaxConns = 1
		c.KeepAlive = true
		c.Pipelining = true
		c.ExplicitFirstFlush = true
		c.NoDelay = true
		c.AcceptDeflate = true
		c.Style = StyleRobot11
	case ModeNetscape:
		c.Proto = "HTTP/1.0"
		c.MaxConns = 4
		c.KeepAlive = true
		c.Style = StyleNetscape
	case ModeMSIE:
		c.Proto = "HTTP/1.1"
		c.MaxConns = 4
		c.KeepAlive = true
		c.Style = StyleMSIE
	case ModeMux, ModeMuxPush:
		c.Proto = "HTTP/1.1" // synthesized responses carry this proto
		c.MaxConns = 1
		c.KeepAlive = true
		c.NoDelay = true
		c.Style = StyleRobot11
		c.Mux = true
		c.MuxPush = m == ModeMuxPush
	case ModeBurst:
		c.Proto = "HTTP/1.1"
		c.MaxConns = 1
		c.KeepAlive = true
		c.NoDelay = true
		c.Style = StyleRobot11
		c.Burst = true
	}
	return c
}

// Result summarizes one page fetch.
type Result struct {
	Done    bool
	Aborted bool

	Requests       int
	Responses200   int
	Responses304   int
	ResponsesOther int

	// PayloadBytes counts response body bytes as received (compressed
	// bodies count compressed).
	PayloadBytes int64

	SocketsUsed          int
	MaxSimultaneousConns int

	// Errors counts connection-level failures (resets, truncations).
	Errors int
	// Retried counts requests re-sent after a connection failure.
	Retried int

	// Timeouts counts progress-watchdog expiries (Recovery policy):
	// connections aborted because no bytes arrived for RequestTimeout
	// with requests outstanding.
	Timeouts int
	// RequestsRecovered counts requests that failed at least once and
	// ultimately completed; RequestsFailed counts requests dropped
	// permanently (retry budget exhausted or non-idempotent method).
	RequestsRecovered int
	RequestsFailed    int
	// WastedBytes counts response bytes that were delivered and then
	// discarded: partial responses thrown away when their connection
	// failed and the request was re-issued.
	WastedBytes int64
	// RecoverySeconds sums the intervals from each failure streak's
	// first failure to the first retried response completing.
	RecoverySeconds float64
	// Fallbacks counts protocol degradations (pipelined → serial →
	// HTTP/1.0) taken after repeated connection failures.
	Fallbacks int

	// Responses206 counts partial-content responses (range probes and
	// remainder fetches).
	Responses206 int

	// MetadataSeconds is the virtual time at which every object had
	// delivered its first response (a 304, a probe's 206, or a full
	// response) — the layout-critical quantity range probing improves.
	MetadataSeconds float64
	// CompleteSeconds is the virtual time the whole fetch finished.
	CompleteSeconds float64

	// DeflateResponses counts responses that arrived deflate-coded.
	DeflateResponses int
	// InflatedBytes is the decoded size of those bodies.
	InflatedBytes int64

	// Multiplexed-mode accounting (zero outside Mux/MuxPush/Burst).
	// StreamsOpened counts client-initiated streams; PushPromised the
	// promises the server made; PushUsed the promises this fetch
	// claimed in place of its own request.
	StreamsOpened int
	PushPromised  int
	PushUsed      int
	// PushWastedBytes counts pushed body bytes the client never wanted:
	// DATA arriving on cancelled promises plus completed pushes that
	// were never claimed (Meireles et al.'s wasted-push measure).
	PushWastedBytes int64
	// HeaderBytesSaved is the client-observed HPACK-style compression
	// win: Σ (plain HTTP/1.x header size − encoded block size) over
	// both directions of the mux connection.
	HeaderBytesSaved int64
	// FlowControlStalls counts this side's transitions into an
	// exhausted stream or connection flow-control window.
	FlowControlStalls int
	// StreamsReset counts mux streams torn down by RST_STREAM for
	// error recovery: peer resets of request or push streams plus
	// watchdog-initiated per-stream teardowns. Cache-refusal push
	// cancellations (normal behaviour) are not counted.
	StreamsReset int
	// Goaways counts GOAWAY session-close announcements on the mux
	// connection, received from the server or sent by this client's
	// strict frame validator.
	Goaways int
	// DeadlocksDetected counts watchdog expiries the session's flow
	// detectors classified as a provable flow-control deadlock — an
	// exhausted window that would never refill — rather than a generic
	// stall. With recovery armed this is usually zero: resets and
	// redials clear wedged windows before they become terminal.
	DeadlocksDetected int
}
