package httpclient

import (
	"repro/internal/htmlparse"
	"repro/internal/webgen"
)

// Entry is one cached resource's metadata. Bodies are not retained: the
// revalidation workload only needs validators and, for HTML, the inline
// link list.
type Entry struct {
	Path         string
	ContentType  string
	ETag         string
	LastModified string
	Size         int
	// Links lists inline resources referenced by an HTML entry, in
	// document order.
	Links []string
	// Validations counts successful 304 revalidations.
	Validations int
}

// Cache is the robot's persistent cache (kept on a memory file system in
// the paper's final runs).
type Cache struct {
	entries map[string]*Entry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*Entry)}
}

// Get returns the entry for path.
func (c *Cache) Get(path string) (*Entry, bool) {
	e, ok := c.entries[path]
	return e, ok
}

// Put stores an entry.
func (c *Cache) Put(e *Entry) { c.entries[e.Path] = e }

// Len returns the number of entries.
func (c *Cache) Len() int { return len(c.entries) }

// Prime fills the cache from a site, as if a prior first-time retrieval
// had completed: every object's validators, plus the page's link list.
func (c *Cache) Prime(site *webgen.Site) {
	for _, path := range site.Paths() {
		obj, _ := site.Object(path)
		e := &Entry{
			Path:         obj.Path,
			ContentType:  obj.ContentType,
			ETag:         obj.ETag,
			LastModified: obj.LastModified,
			Size:         len(obj.Body),
		}
		if obj.ContentType == "text/html" {
			var ex htmlparse.LinkExtractor
			for _, l := range ex.Feed(obj.Body) {
				if l.Kind.Inline() {
					e.Links = append(e.Links, l.URL)
				}
			}
		}
		c.Put(e)
	}
}
