package httpclient

import (
	"fmt"
	"strings"

	"repro/internal/flatez"
	"repro/internal/htmlparse"
	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// workItem is one HTTP request to perform.
type workItem struct {
	method      string
	path        string
	conditional bool
	isHTML      bool
	retried     bool
	// rangeLo/rangeHi select a byte range (both zero = none; rangeHi of
	// -1 = open-ended). Probes are the paper's "poor man's multiplexing":
	// a validation that, if the entity changed, returns only its first
	// bytes so large objects cannot monopolize the connection.
	rangeLo, rangeHi int
	probe            bool
	remainder        bool
	// span is the item's timeline span (0 when observability is off).
	span obs.SpanID
}

// hasRange reports whether the item carries a Range header.
func (it workItem) hasRange() bool { return it.rangeLo != 0 || it.rangeHi != 0 }

// Robot drives one page fetch over the simulated network.
type Robot struct {
	sim        *sim.Simulator
	host       *tcpsim.Host
	serverHost string
	serverPort int
	cfg        Config
	cache      *Cache
	cpu        *sim.CPU

	workload  Workload
	queue     []workItem
	conns     []*clientConn
	mux       *muxConn
	extractor htmlparse.LinkExtractor
	enqueued  map[string]bool
	imageURLs []string

	issued      int
	handled     int
	htmlPending bool
	cautious    bool
	finished    bool
	metaPending int
	onDone      func(*Robot)

	// Recovery state, all inert while cfg.Recovery is nil.
	consecFails  int
	fallbackLvl  int
	retryCharge  int // retries counted against Policy.RetryBudget
	backoffUntil sim.Time
	backoffTimer sim.TimerHandle
	recoverFrom  sim.Time
	recovering   bool
	lastData     sim.Time

	result Result
}

// NewRobot builds a robot on the given host. rng adds CPU jitter when
// non-nil.
func NewRobot(s *sim.Simulator, host *tcpsim.Host, serverHost string, serverPort int, cfg Config, cache *Cache, rng *sim.Rand, cpuJitter float64) *Robot {
	if cache == nil {
		cache = NewCache()
	}
	return &Robot{
		sim:        s,
		host:       host,
		serverHost: serverHost,
		serverPort: serverPort,
		cfg:        cfg,
		cache:      cache,
		cpu:        sim.NewCPU(s, rng, cpuJitter),
		enqueued:   make(map[string]bool),
	}
}

// Cache returns the robot's cache.
func (r *Robot) Cache() *Cache { return r.cache }

// CPUTime returns the total simulated CPU work the robot has consumed.
func (r *Robot) CPUTime() sim.Duration { return r.cpu.TotalWork() }

// Result returns the fetch summary so far.
func (r *Robot) Result() Result { return r.result }

// Finished reports whether the fetch completed.
func (r *Robot) Finished() bool { return r.finished }

// Start begins fetching pagePath under the given workload. onDone (may be
// nil) fires when the page and all inline objects are done.
func (r *Robot) Start(pagePath string, workload Workload, onDone func(*Robot)) {
	r.workload = workload
	r.onDone = onDone
	r.htmlPending = true

	item := workItem{method: "GET", path: pagePath, isHTML: true}
	if workload == Revalidate && !r.cfg.RevalidateHTMLUnconditionally {
		if _, ok := r.cache.Get(pagePath); ok {
			item.conditional = true
		}
	}
	item.span = r.cfg.Obs.SpanQueued(item.method, item.path, false)
	r.queue = append(r.queue, item)
	r.enqueued[pagePath] = true
	r.metaPending++
	r.dispatch()
}

// enqueueImage queues a fetch/validation for one discovered inline URL.
func (r *Robot) enqueueImage(url string) {
	if r.cfg.PageOnly || r.enqueued[url] {
		return
	}
	r.enqueued[url] = true
	r.imageURLs = append(r.imageURLs, url)
	it := workItem{method: "GET", path: url}
	if r.workload == Revalidate {
		if r.cfg.RevalImagesViaHEAD {
			it.method = "HEAD"
		} else if _, ok := r.cache.Get(url); ok {
			it.conditional = true
			if r.cfg.RevalRangeProbe > 0 {
				it.probe = true
				it.rangeLo, it.rangeHi = 0, r.cfg.RevalRangeProbe-1
			}
		}
	}
	it.span = r.cfg.Obs.SpanQueued(it.method, it.path, false)
	r.metaPending++
	r.queue = append(r.queue, it)
}

// discoverLinks feeds HTML to the streaming extractor, queueing inline
// resources as they appear — possibly while the page is still arriving.
func (r *Robot) discoverLinks(chunk []byte) {
	links := r.extractor.Feed(chunk)
	if len(links) == 0 {
		return
	}
	for _, l := range links {
		if l.Kind.Inline() {
			r.enqueueImage(l.URL)
		}
	}
	r.dispatch()
}

// dispatch moves queued work onto connections.
func (r *Robot) dispatch() {
	if r.finished {
		return
	}
	if r.holdForBackoff() {
		return
	}
	if r.cfg.Mux {
		r.muxDispatch()
		r.checkDone()
		return
	}
	if r.cfg.Pipelining && !r.cautious {
		if len(r.queue) > 0 {
			c := r.soleConn()
			for len(r.queue) > 0 {
				it := r.queue[0]
				r.queue = r.queue[1:]
				c.enqueuePipelined(it)
			}
		}
		// Flush before idle: once the document parse is complete no
		// further requests can appear, so waiting for the timer would
		// only lose time (the paper's explicit-flush insight).
		if c := r.liveConn(); c != nil && len(c.sendBuf) > 0 && !r.htmlPending {
			c.flush()
		}
	} else {
		for len(r.queue) > 0 {
			c := r.idleConn()
			if c == nil {
				break
			}
			it := r.queue[0]
			r.queue = r.queue[1:]
			c.sendImmediate(it)
		}
	}
	r.checkDone()
}

// holdForBackoff delays re-dialing while the recovery policy's backoff
// window is open. Queued work stays queued; a timer resumes dispatch
// when the window closes. Existing live connections are not affected.
func (r *Robot) holdForBackoff() bool {
	if r.cfg.Recovery == nil || len(r.queue) == 0 {
		return false
	}
	if r.backoffUntil <= r.sim.Now() || r.liveConn() != nil {
		return false
	}
	if !r.backoffTimer.Active() {
		r.backoffTimer = r.sim.AtArg(r.backoffUntil, robotDispatch, r)
	}
	return true
}

// fallbackDegrade is the bottom of the degradation ladder, taken after
// FallbackAfter consecutive connection failures: give up on persistent
// connections entirely and fall back to HTTP/1.0, one request per
// connection. (The ladder's first step, pipelined → serial, is taken in
// failConn on the first pipelined error.)
func (r *Robot) fallbackDegrade() {
	if r.fallbackLvl >= 2 || r.cfg.Proto != "HTTP/1.1" {
		return
	}
	r.cfg.Proto = "HTTP/1.0"
	r.cfg.KeepAlive = false
	r.cfg.Pipelining = false
	r.fallbackLvl = 2
	r.consecFails = 0
	r.result.Fallbacks++
	r.cfg.Obs.Fallback(2, "http10")
}

// fallbackMuxDegrade abandons framed multiplexing after FallbackAfter
// consecutive session failures: the fetch continues over HTTP/1.1
// pipelining — the top of the HTTP/1.x ladder, so later failures can
// still step down to serial and HTTP/1.0 via failConn.
func (r *Robot) fallbackMuxDegrade() {
	if !r.cfg.Mux {
		return
	}
	r.cfg.Mux = false
	r.cfg.MuxPush = false
	r.cfg.Pipelining = true
	r.cfg.ExplicitFirstFlush = true
	r.consecFails = 0
	r.result.Fallbacks++
	r.cfg.Obs.Fallback(1, "pipelined")
}

// liveConn returns the open connection, if any.
func (r *Robot) liveConn() *clientConn {
	for _, c := range r.conns {
		if !c.dead {
			return c
		}
	}
	return nil
}

// soleConn returns the pipelining connection, dialing if needed.
func (r *Robot) soleConn() *clientConn {
	if c := r.liveConn(); c != nil {
		return c
	}
	return r.dial()
}

// idleConn returns a reusable connection with nothing outstanding, or
// dials a new one within MaxConns.
func (r *Robot) idleConn() *clientConn {
	live := 0
	for _, c := range r.conns {
		if c.dead {
			continue
		}
		live++
		if len(c.inflight) == 0 {
			return c
		}
	}
	if live < r.cfg.MaxConns {
		return r.dial()
	}
	return nil
}

func (r *Robot) dial() *clientConn {
	cc := &clientConn{r: r}
	cc.parser.BodyChunk = func(head *httpmsg.Response, chunk []byte) {
		// Identify the page by its media type: one Feed call can complete
		// several pipelined responses, so the request queue's head is not
		// a reliable indicator of what is currently streaming.
		if head.StatusCode != 200 {
			return
		}
		if !strings.Contains(head.Header.Get("Content-Type"), "text/html") {
			return
		}
		if head.Header.Get("Content-Encoding") != "" {
			return // compressed bodies are parsed after inflation
		}
		r.discoverLinks(chunk)
	}
	opts := r.cfg.TCP
	opts.NoDelay = r.cfg.NoDelay
	cc.conn = r.host.Dial(r.serverHost, r.serverPort, opts, &tcpsim.Callbacks{
		Data:      cc.onData,
		PeerClose: cc.onPeerClose,
		Error:     cc.onError,
		Close:     cc.onClose,
	})
	r.conns = append(r.conns, cc)
	r.result.SocketsUsed++
	if live := r.liveCount(); live > r.result.MaxSimultaneousConns {
		r.result.MaxSimultaneousConns = live
	}
	return cc
}

func (r *Robot) liveCount() int {
	n := 0
	for _, c := range r.conns {
		if !c.dead {
			n++
		}
	}
	return n
}

// buildItemRequest composes the wire request for a work item.
func (r *Robot) buildItemRequest(it workItem) *httpmsg.Request {
	req := buildRequest(r.cfg.Style, it.method, it.path, r.serverHost, r.cfg.Proto)
	if it.conditional {
		if e, ok := r.cache.Get(it.path); ok {
			if r.cfg.Style == StyleRobot11 {
				// Full HTTP/1.1 validators: entity tag plus date.
				req.Header.Add("If-None-Match", e.ETag)
			}
			req.Header.Add("If-Modified-Since", e.LastModified)
		}
	}
	if it.hasRange() {
		if it.rangeHi < 0 {
			req.Header.Add("Range", fmt.Sprintf("bytes=%d-", it.rangeLo))
		} else {
			req.Header.Add("Range", fmt.Sprintf("bytes=%d-%d", it.rangeLo, it.rangeHi))
		}
	}
	if it.isHTML && r.cfg.AcceptDeflate {
		req.Header.Add("Accept-Encoding", "deflate")
	}
	if it.isHTML && r.cfg.Burst {
		req.Header.Add(mux.BurstRequestHeader, mux.BurstRequestValue)
	}
	return req
}

// handleResponse runs after per-response client CPU work.
func (r *Robot) handleResponse(cc *clientConn, it workItem, resp *httpmsg.Response) {
	if r.finished {
		return
	}
	if r.cfg.Recovery != nil {
		r.consecFails = 0
		if it.retried {
			r.result.RequestsRecovered++
			if r.recovering {
				// First retried response since the failure streak began:
				// close the recovery interval.
				r.recovering = false
				r.result.RecoverySeconds += r.sim.Now().Sub(r.recoverFrom).Seconds()
			}
		}
	}
	if r.cfg.Burst && it.isHTML {
		r.handleBurstResponse(it, resp)
		return
	}
	body := resp.Body
	switch resp.StatusCode {
	case 200:
		r.result.Responses200++
	case 206:
		r.result.Responses206++
	case 304:
		r.result.Responses304++
	default:
		r.result.ResponsesOther++
	}
	r.result.PayloadBytes += int64(len(body))

	// First response for an object completes its metadata (size, header
	// fields, leading bytes) — the quantity range probing accelerates.
	if !it.remainder {
		r.metaPending--
		if r.metaPending == 0 {
			// Later discoveries re-raise the count, so the last zero
			// crossing (which overwrites this) is the real completion.
			r.result.MetadataSeconds = r.sim.Now().Seconds()
		}
	}

	// A probe that hit a changed entity returned only its head; fetch the
	// remainder to complete the object.
	if it.probe && resp.StatusCode == 206 {
		total := contentRangeTotal(resp.Header.Get("Content-Range"))
		if total > it.rangeHi+1 {
			r.queue = append(r.queue, workItem{
				method:    "GET",
				path:      it.path,
				rangeLo:   it.rangeHi + 1,
				rangeHi:   -1,
				remainder: true,
				span:      r.cfg.Obs.SpanQueued("GET", it.path, false),
			})
		}
	}

	if resp.Header.Get("Content-Encoding") == "deflate" {
		r.result.DeflateResponses++
		if decoded, err := flatez.Decompress(body); err == nil {
			body = decoded
			r.result.InflatedBytes += int64(len(body))
		}
	}

	if it.isHTML {
		if resp.StatusCode == 200 {
			if resp.Header.Get("Content-Encoding") == "deflate" {
				// Compressed page: parse the inflated document now.
				r.discoverLinks(body)
			}
			// Identity-coded pages were parsed incrementally via the
			// BodyChunk hook.
		}
		if r.workload == Revalidate && resp.StatusCode == 304 {
			// The cached page is fresh: validate every inline object the
			// cache recorded for it.
			if e, ok := r.cache.Get(it.path); ok {
				for _, url := range e.Links {
					r.enqueueImage(url)
				}
			}
		}
		r.htmlPending = false
	}

	// Cache maintenance.
	switch resp.StatusCode {
	case 200:
		e := &Entry{
			Path:         it.path,
			ContentType:  resp.Header.Get("Content-Type"),
			ETag:         resp.Header.Get("ETag"),
			LastModified: resp.Header.Get("Last-Modified"),
			Size:         len(body),
		}
		if it.isHTML {
			e.Links = append([]string(nil), r.imageURLs...)
		}
		r.cache.Put(e)
	case 206:
		if e, ok := r.cache.Get(it.path); ok {
			if et := resp.Header.Get("ETag"); et != "" {
				e.ETag = et
			}
			if lm := resp.Header.Get("Last-Modified"); lm != "" {
				e.LastModified = lm
			}
		}
	case 304:
		if e, ok := r.cache.Get(it.path); ok {
			e.Validations++
		}
	}

	r.handled++
	r.dispatch()
}

// checkDone finishes the fetch when all issued work is complete.
func (r *Robot) checkDone() {
	if r.finished || r.htmlPending || len(r.queue) > 0 || r.handled < r.issued {
		return
	}
	r.finished = true
	r.result.Done = true
	r.result.Requests = r.issued
	r.result.CompleteSeconds = r.sim.Now().Seconds()
	if r.metaPending > 0 {
		r.result.MetadataSeconds = r.result.CompleteSeconds
	}
	for _, c := range r.conns {
		if !c.dead {
			c.flush()
			c.conn.CloseWrite()
		}
	}
	if r.mux != nil {
		r.mux.finish()
	}
	if r.onDone != nil {
		r.onDone(r)
	}
}

// failConn re-queues unanswered requests from a failed or closed
// connection and retires it. With a Recovery policy it additionally
// enforces the retry budget and idempotency, opens the backoff window,
// and steps down the protocol ladder after repeated failures.
func (r *Robot) failConn(cc *clientConn, isError bool) {
	if cc.dead {
		return
	}
	cc.dead = true
	cc.stopWatchdog()
	p := r.cfg.Recovery
	if isError {
		r.result.Errors++
		// A reset with pipelined requests outstanding leaves the client
		// unable to tell which requests succeeded (the paper's
		// connection-management scenario). Fall back to one request at a
		// time, the defensive behaviour deployed clients adopted. Under a
		// Recovery policy this is the ladder's first step.
		if r.cfg.Pipelining && !r.cautious {
			r.cautious = true
			if p != nil {
				r.fallbackLvl = 1
				r.result.Fallbacks++
				r.cfg.Obs.Fallback(1, "serial")
			}
		}
		if p != nil {
			r.consecFails++
			if b := p.Backoff(r.consecFails); b > 0 {
				r.backoffUntil = r.sim.Now().Add(b)
				r.cfg.Obs.RetryBackoff(b, r.consecFails)
			}
			if p.FallbackAfter > 0 && r.consecFails >= p.FallbackAfter {
				r.fallbackDegrade()
			}
		}
	}
	if n := len(cc.inflight); n > 0 {
		// Even a graceful close that takes a pipelined batch down with it
		// makes pipelining unproductive (each close costs the whole
		// outstanding batch, and clean re-pipelining can repeat forever):
		// under a policy, step down to serial after the first one.
		if p != nil && !isError && r.cfg.Pipelining && !r.cautious && n > 1 {
			r.cautious = true
			r.fallbackLvl = 1
			r.result.Fallbacks++
			r.cfg.Obs.Fallback(1, "serial")
		}
		// Bytes of a partial in-progress response are delivered work the
		// retry will repeat.
		r.result.WastedBytes += int64(cc.parser.Pending())
		if p != nil && !r.recovering {
			r.recovering = true
			r.recoverFrom = r.sim.Now()
		}
		for _, it := range cc.inflight {
			if p != nil && (!idempotent(it.method) || !p.Allow(r.retryCharge)) {
				// Budget exhausted (or unsafe to replay): drop the request
				// permanently rather than retry forever. Its span stays
				// open-ended, which the waterfall marks abandoned.
				r.issued--
				r.result.RequestsFailed++
				r.result.Aborted = true
				if it.isHTML {
					r.htmlPending = false
				}
				continue
			}
			it.retried = true
			r.result.Retried++
			r.retryCharge++
			r.issued-- // it will be re-issued
			// The original span stays open-ended; the retry is its own span.
			it.span = r.cfg.Obs.SpanQueued(it.method, it.path, true)
			r.queue = append(r.queue, it)
			if it.isHTML {
				// The page will be re-received from the start; discard
				// the half-parsed tokenizer state. Already-discovered
				// links stay deduplicated by r.enqueued.
				r.extractor = htmlparse.LinkExtractor{}
			}
		}
		cc.inflight = nil
	}
	r.dispatch()
}

// idempotent reports whether a request may be transparently re-issued
// after a connection failure (RFC 2616 §8.1.4: methods safe to replay).
func idempotent(method string) bool {
	return method == "GET" || method == "HEAD"
}

// clientConn is one TCP connection of the robot.
type clientConn struct {
	r        *Robot
	conn     *tcpsim.Conn
	parser   httpmsg.ResponseParser
	inflight []workItem

	sendBuf    []byte
	flushTimer sim.TimerHandle
	watchdog   sim.TimerHandle
	sentFirst  bool
	dead       bool
	// unflushed holds the spans of buffered pipelined requests; their
	// span-written instant is the flush, not the enqueue.
	unflushed []obs.SpanID
}

// enqueuePipelined appends the request to the output buffer and applies
// the paper's flush policy.
func (cc *clientConn) enqueuePipelined(it workItem) {
	req := cc.r.buildItemRequest(it)
	cc.sendBuf = append(cc.sendBuf, req.Marshal()...)
	cc.inflight = append(cc.inflight, it)
	cc.parser.PushExpectation(it.method)
	cc.r.issued++
	if it.span != 0 {
		cc.unflushed = append(cc.unflushed, it.span)
	}

	first := !cc.sentFirst
	cc.sentFirst = true
	switch {
	case first && cc.r.cfg.ExplicitFirstFlush:
		cc.flush()
	case len(cc.sendBuf) >= cc.r.cfg.BufferSize:
		cc.flush()
	default:
		cc.armFlushTimer()
	}
}

// sendImmediate writes one request with no buffering (serial modes).
func (cc *clientConn) sendImmediate(it workItem) {
	req := cc.r.buildItemRequest(it)
	cc.inflight = append(cc.inflight, it)
	cc.parser.PushExpectation(it.method)
	cc.r.issued++
	cc.r.cfg.Obs.SpanWritten(it.span, cc.conn.ObsID())
	cc.conn.Write(req.Marshal())
	cc.armWatchdog()
}

func (cc *clientConn) flush() {
	cc.flushTimer.Stop()
	if len(cc.sendBuf) == 0 || cc.dead {
		return
	}
	buf := cc.sendBuf
	cc.sendBuf = nil
	if len(cc.unflushed) > 0 {
		for _, id := range cc.unflushed {
			cc.r.cfg.Obs.SpanWritten(id, cc.conn.ObsID())
		}
		cc.unflushed = cc.unflushed[:0]
	}
	cc.conn.Write(buf)
	cc.armWatchdog()
}

// armWatchdog (re)starts the progress watchdog: with requests
// outstanding, RequestTimeout of silence means the connection is
// presumed dead (stalled server, blackholed path) and is aborted so the
// requests can be re-issued. It is re-armed on every data arrival, so
// slow-but-progressing transfers (pipelined responses trickling over a
// modem link) never trip it.
func (cc *clientConn) armWatchdog() {
	p := cc.r.cfg.Recovery
	if p == nil || p.RequestTimeout <= 0 {
		return
	}
	if cc.dead || len(cc.inflight) == 0 {
		cc.stopWatchdog()
		return
	}
	// Rescheduling the live watchdog or arming a fresh one both consume
	// one sequence number, exactly like the old stop-then-schedule pair,
	// keeping event order byte-identical. This runs on every data
	// arrival, so it must not allocate.
	if !cc.watchdog.Reschedule(p.RequestTimeout) {
		cc.watchdog = cc.r.sim.ScheduleArg(p.RequestTimeout, watchdogFire, cc)
	}
}

// Package-level timer thunks keep the per-event path allocation-free.
func watchdogFire(a any)  { a.(*clientConn).onWatchdog() }
func flushFire(a any)     { a.(*clientConn).onFlushTimer() }
func robotDispatch(a any) { a.(*Robot).dispatch() }

func (cc *clientConn) onWatchdog() {
	p := cc.r.cfg.Recovery
	// Parallel connections share the link: one of them starving while
	// the others transfer is contention, not a stall. Only declare
	// the connection dead once the whole robot has been silent for
	// the timeout.
	if since := cc.r.sim.Now().Sub(cc.r.lastData); since < p.RequestTimeout {
		cc.watchdog = cc.r.sim.ScheduleArg(p.RequestTimeout-since, watchdogFire, cc)
		return
	}
	cc.r.result.Timeouts++
	cc.r.cfg.Obs.ClientTimeout(cc.conn.ObsID(), p.RequestTimeout)
	cc.conn.Abort()
	cc.r.failConn(cc, true)
}

func (cc *clientConn) stopWatchdog() {
	cc.watchdog.Stop()
}

func (cc *clientConn) armFlushTimer() {
	if cc.flushTimer.Active() || cc.r.cfg.FlushTimeout <= 0 {
		return
	}
	cc.flushTimer = cc.r.sim.ScheduleArg(cc.r.cfg.FlushTimeout, flushFire, cc)
}

func (cc *clientConn) onFlushTimer() { cc.flush() }

func (cc *clientConn) onData(c *tcpsim.Conn, data []byte) {
	cc.r.lastData = cc.r.sim.Now()
	if len(cc.inflight) > 0 {
		cc.r.cfg.Obs.SpanFirstByte(cc.inflight[0].span)
	}
	resps, err := cc.parser.Feed(data)
	if err != nil {
		cc.conn.Abort()
		cc.r.failConn(cc, true)
		return
	}
	cc.deliver(resps)
	cc.armWatchdog() // progress: restart the silence clock
}

// deliver pops completed responses and schedules their CPU handling.
func (cc *clientConn) deliver(resps []*httpmsg.Response) {
	r := cc.r
	for _, resp := range resps {
		if len(cc.inflight) == 0 {
			break
		}
		it := cc.inflight[0]
		cc.inflight = cc.inflight[1:]
		r.cfg.Obs.SpanDone(it.span, resp.StatusCode, int64(len(resp.Body)))

		connClose := httpmsg.TokenListContains(resp.Header.Get("Connection"), "close")
		reusable := r.cfg.KeepAlive && !connClose
		if !reusable && len(cc.inflight) == 0 && !cc.dead {
			// HTTP/1.0 style: this connection is spent.
			cc.dead = true
			cc.conn.CloseWrite()
		}

		r.cpu.Run(r.cfg.PerRequestCPU, func() {
			r.handleResponse(cc, it, resp)
		})
	}
	// New idle capacity may exist (connection reuse).
	if !r.cfg.Pipelining {
		r.dispatch()
	}
}

func (cc *clientConn) onPeerClose(c *tcpsim.Conn) {
	// The server finished sending: a trailing until-close body completes
	// here.
	resp, err := cc.parser.CloseEOF()
	if err == nil && resp != nil && len(cc.inflight) > 0 {
		cc.deliver([]*httpmsg.Response{resp})
	}
	truncated := err != nil
	if !cc.dead {
		cc.conn.CloseWrite()
	}
	cc.r.failConn(cc, truncated)
}

func (cc *clientConn) onError(c *tcpsim.Conn, err error) {
	cc.r.failConn(cc, true)
}

func (cc *clientConn) onClose(c *tcpsim.Conn) {
	cc.r.failConn(cc, false)
}

// contentRangeTotal parses the total length out of "bytes lo-hi/total".
func contentRangeTotal(v string) int {
	slash := strings.IndexByte(v, '/')
	if slash < 0 {
		return 0
	}
	total := 0
	for _, c := range v[slash+1:] {
		if c < '0' || c > '9' {
			return 0
		}
		total = total*10 + int(c-'0')
	}
	return total
}

// RevalidationRequests returns the marshaled conditional GET requests the
// tuned robot would pipeline to revalidate a cached page (page first,
// then its images in document order). It exists for offline analyses of
// request redundancy, such as the paper's compact-wire-representation
// estimate.
func RevalidationRequests(cache *Cache) [][]byte {
	page, ok := cache.Get("/")
	if !ok {
		return nil
	}
	r := &Robot{cfg: ModeHTTP11Pipelined.Config(), cache: cache}
	out := [][]byte{
		r.buildItemRequest(workItem{method: "GET", path: "/", conditional: true, isHTML: true}).Marshal(),
	}
	for _, link := range page.Links {
		out = append(out, r.buildItemRequest(workItem{method: "GET", path: link, conditional: true}).Marshal())
	}
	return out
}
