package httpclient

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

var (
	siteOnce sync.Once
	siteVal  *webgen.Site
	siteErr  error
)

func testSite(t *testing.T) *webgen.Site {
	t.Helper()
	siteOnce.Do(func() {
		siteVal, siteErr = webgen.Microscape(webgen.Options{Seed: 7, HTMLBytes: 6000})
	})
	if siteErr != nil {
		t.Fatal(siteErr)
	}
	return siteVal
}

// fetch runs one robot fetch against a fresh simulated network.
func fetch(t *testing.T, cfg Config, wl Workload, prime bool) (*Robot, *sim.Simulator) {
	t.Helper()
	s := sim.New()
	s.SetEventLimit(10_000_000)
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: 2 * time.Millisecond, BitsPerSecond: 10_000_000, MTU: 1500}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	site := testSite(t)
	httpserver.New(s, serverHost, 80, site,
		httpserver.Config{Profile: httpserver.ProfileApache, NoDelay: true, EnableDeflate: cfg.AcceptDeflate}, nil, 0)
	cache := NewCache()
	if prime {
		cache.Prime(site)
	}
	robot := NewRobot(s, client, "server", 80, cfg, cache, nil, 0)
	s.Schedule(0, func() { robot.Start("/", wl, nil) })
	s.Run()
	if !robot.Finished() {
		t.Fatalf("robot did not finish: %+v", robot.Result())
	}
	return robot, s
}

func TestModePresets(t *testing.T) {
	cases := []struct {
		mode      Mode
		proto     string
		conns     int
		pipelined bool
	}{
		{ModeHTTP10, "HTTP/1.0", 4, false},
		{ModeHTTP11Serial, "HTTP/1.1", 1, false},
		{ModeHTTP11Pipelined, "HTTP/1.1", 1, true},
		{ModeHTTP11PipelinedDeflate, "HTTP/1.1", 1, true},
		{ModeNetscape, "HTTP/1.0", 4, false},
		{ModeMSIE, "HTTP/1.1", 4, false},
	}
	for _, c := range cases {
		cfg := c.mode.Config()
		if cfg.Proto != c.proto || cfg.MaxConns != c.conns || cfg.Pipelining != c.pipelined {
			t.Errorf("%v preset = %+v", c.mode, cfg)
		}
	}
	if !ModeHTTP11PipelinedDeflate.Config().AcceptDeflate {
		t.Error("deflate mode must accept deflate")
	}
	if ModeHTTP10.Config().KeepAlive {
		t.Error("HTTP/1.0 robot must not keep alive")
	}
	if !ModeNetscape.Config().KeepAlive {
		t.Error("Netscape profile uses Keep-Alive")
	}
}

func TestModeAndWorkloadStrings(t *testing.T) {
	if ModeHTTP11Pipelined.String() != "HTTP/1.1 Pipelined" {
		t.Error("mode name")
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode name")
	}
	if FirstTime.String() != "First Time Retrieval" || Revalidate.String() != "Cache Validation" {
		t.Error("workload names")
	}
}

func TestRequestSizesMatchPaper(t *testing.T) {
	// The tuned robot's requests average ~190 bytes with validators.
	req := buildRequest(StyleRobot11, "GET", "/images/bullet_sm.gif", "server", "HTTP/1.1")
	req.Header.Add("If-None-Match", `"3a5f2c77-2d4"`)
	req.Header.Add("If-Modified-Since", "Fri, 20 Jun 1997 08:30:00 GMT")
	if n := req.WireSize(); n < 150 || n > 230 {
		t.Errorf("robot conditional request = %dB, want ≈190", n)
	}
	// Browser requests are considerably bigger.
	ns := buildRequest(StyleNetscape, "GET", "/images/bullet_sm.gif", "server", "HTTP/1.0")
	if n := ns.WireSize(); n < 250 {
		t.Errorf("Netscape request = %dB, want > 250", n)
	}
	ie := buildRequest(StyleMSIE, "GET", "/images/bullet_sm.gif", "server", "HTTP/1.1")
	if n := ie.WireSize(); n < 280 {
		t.Errorf("MSIE request = %dB, want > 280", n)
	}
	old := buildRequest(StyleRobot10, "GET", "/images/bullet_sm.gif", "server", "HTTP/1.0")
	if n := old.WireSize(); n < 300 {
		t.Errorf("old libwww request = %dB, want > 300", n)
	}
}

func TestStyleStrings(t *testing.T) {
	for _, s := range []Style{StyleRobot11, StyleRobot10, StyleNetscape, StyleMSIE} {
		if s.String() == "unknown" {
			t.Errorf("style %d unnamed", s)
		}
	}
	if Style(99).String() != "unknown" {
		t.Error("unknown style misnamed")
	}
}

func TestFirstTimeFetchAllObjects(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP11Pipelined.Config(), FirstTime, false)
	res := robot.Result()
	if res.Responses200 != 43 {
		t.Fatalf("200s = %d, want 43", res.Responses200)
	}
	if res.SocketsUsed != 1 {
		t.Fatalf("sockets = %d, want 1", res.SocketsUsed)
	}
	// The cache is now populated with validators and the page's links.
	if robot.Cache().Len() != 43 {
		t.Fatalf("cache entries = %d, want 43", robot.Cache().Len())
	}
	page, ok := robot.Cache().Get("/")
	if !ok || len(page.Links) != 42 {
		t.Fatalf("page cache entry links = %d, want 42", len(page.Links))
	}
}

func TestFetchThenRevalidateUsesOwnCache(t *testing.T) {
	// End-to-end cache lifecycle without priming: fetch fills the cache;
	// a second robot sharing it revalidates everything.
	s := sim.New()
	s.SetEventLimit(10_000_000)
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: 2 * time.Millisecond, BitsPerSecond: 10_000_000, MTU: 1500}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	site := testSite(t)
	httpserver.New(s, serverHost, 80, site, httpserver.Config{Profile: httpserver.ProfileApache, NoDelay: true}, nil, 0)

	cache := NewCache()
	first := NewRobot(s, client, "server", 80, ModeHTTP11Pipelined.Config(), cache, nil, 0)
	s.Schedule(0, func() { first.Start("/", FirstTime, nil) })
	s.Run()
	if !first.Finished() {
		t.Fatal("first fetch incomplete")
	}

	second := NewRobot(s, client, "server", 80, ModeHTTP11Pipelined.Config(), cache, nil, 0)
	s.Schedule(0, func() { second.Start("/", Revalidate, nil) })
	s.Run()
	if !second.Finished() {
		t.Fatal("revalidation incomplete")
	}
	res := second.Result()
	if res.Responses304 != 43 || res.Responses200 != 0 {
		t.Fatalf("revalidation: 304=%d 200=%d, want 43/0", res.Responses304, res.Responses200)
	}
	page, _ := cache.Get("/")
	if page.Validations != 1 {
		t.Fatalf("page validations = %d, want 1", page.Validations)
	}
}

func TestHTTP10UsesConnectionPerRequest(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP10.Config(), FirstTime, false)
	res := robot.Result()
	if res.SocketsUsed != 43 {
		t.Fatalf("sockets = %d, want 43", res.SocketsUsed)
	}
	if res.MaxSimultaneousConns != 4 {
		t.Fatalf("max simultaneous = %d, want 4", res.MaxSimultaneousConns)
	}
}

func TestHTTP10RevalidationUsesHEAD(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP10.Config(), Revalidate, true)
	res := robot.Result()
	// One full GET (page) + 42 HEADs, all of which return 200.
	if res.Responses200 != 43 || res.Responses304 != 0 {
		t.Fatalf("responses: 200=%d 304=%d", res.Responses200, res.Responses304)
	}
	// The HEADs transfer headers only: payload must be roughly the page.
	if res.PayloadBytes > int64(len(testSite(t).HTML.Body))+4000 {
		t.Fatalf("payload = %d, HEAD bodies transferred?", res.PayloadBytes)
	}
}

func TestKeepAliveReusesConnections(t *testing.T) {
	robot, _ := fetch(t, ModeMSIE.Config(), FirstTime, false)
	res := robot.Result()
	if res.SocketsUsed != 4 {
		t.Fatalf("sockets = %d, want 4 (persistent parallel)", res.SocketsUsed)
	}
}

func TestDeflateFetch(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP11PipelinedDeflate.Config(), FirstTime, false)
	res := robot.Result()
	if res.DeflateResponses != 1 {
		t.Fatalf("deflate responses = %d, want 1", res.DeflateResponses)
	}
	if res.InflatedBytes != int64(len(testSite(t).HTML.Body)) {
		t.Fatalf("inflated = %d, want %d", res.InflatedBytes, len(testSite(t).HTML.Body))
	}
	if res.Responses200 != 43 {
		t.Fatalf("200s = %d, want 43 (links parsed from inflated page)", res.Responses200)
	}
}

func TestPageOnlySkipsImages(t *testing.T) {
	cfg := ModeHTTP11Serial.Config()
	cfg.PageOnly = true
	robot, _ := fetch(t, cfg, FirstTime, false)
	res := robot.Result()
	if res.Responses200 != 1 || res.Requests != 1 {
		t.Fatalf("page-only fetched %d objects", res.Responses200)
	}
}

func TestSerialIssuesOneAtATime(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP11Serial.Config(), Revalidate, true)
	res := robot.Result()
	if res.SocketsUsed != 1 || res.Responses304 != 43 {
		t.Fatalf("serial revalidation: %+v", res)
	}
}

func TestCachePrime(t *testing.T) {
	c := NewCache()
	c.Prime(testSite(t))
	if c.Len() != 43 {
		t.Fatalf("primed entries = %d, want 43", c.Len())
	}
	page, ok := c.Get("/")
	if !ok {
		t.Fatal("page not primed")
	}
	if len(page.Links) != 42 {
		t.Fatalf("page links = %d, want 42", len(page.Links))
	}
	for _, link := range page.Links {
		if _, ok := c.Get(link); !ok {
			t.Fatalf("linked object %s not primed", link)
		}
	}
	img, _ := c.Get(page.Links[0])
	if img.ETag == "" || img.LastModified == "" || img.Size == 0 {
		t.Fatalf("image entry incomplete: %+v", img)
	}
}

func TestConditionalRequestCarriesValidators(t *testing.T) {
	c := NewCache()
	c.Prime(testSite(t))
	r := &Robot{cfg: ModeHTTP11Pipelined.Config(), cache: c}
	req := r.buildItemRequest(workItem{method: "GET", path: "/", conditional: true, isHTML: true})
	if !req.Header.Has("If-None-Match") || !req.Header.Has("If-Modified-Since") {
		t.Fatalf("validators missing: %s", req.Marshal())
	}
	// HTTP/1.0-era styles send dates only.
	r10 := &Robot{cfg: ModeNetscape.Config(), cache: c}
	req10 := r10.buildItemRequest(workItem{method: "GET", path: "/", conditional: true})
	if req10.Header.Has("If-None-Match") {
		t.Fatal("Netscape profile sent an entity tag")
	}
	if !req10.Header.Has("If-Modified-Since") {
		t.Fatal("Netscape profile missing IMS")
	}
}

func TestAcceptEncodingOnlyOnPage(t *testing.T) {
	cfg := ModeHTTP11PipelinedDeflate.Config()
	r := &Robot{cfg: cfg, cache: NewCache()}
	page := r.buildItemRequest(workItem{method: "GET", path: "/", isHTML: true})
	if page.Header.Get("Accept-Encoding") != "deflate" {
		t.Fatal("page request missing Accept-Encoding")
	}
	img := r.buildItemRequest(workItem{method: "GET", path: "/images/x.gif"})
	if img.Header.Has("Accept-Encoding") {
		t.Fatal("image request advertises deflate (images are pre-compressed)")
	}
}

func TestPipelinedBatchesIntoFewSegments(t *testing.T) {
	// Revalidation requests (~180B each) must travel many per segment.
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: 10 * time.Millisecond, BitsPerSecond: 10_000_000, MTU: 1500}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	site := testSite(t)
	httpserver.New(s, serverHost, 80, site, httpserver.Config{Profile: httpserver.ProfileApache, NoDelay: true}, nil, 0)
	clientDataSegs := 0
	n.PacketHook = func(ev tcpsim.PacketEvent) {
		if ev.Seg.From.Host == "client" && len(ev.Seg.Payload) > 0 {
			clientDataSegs++
		}
	}
	cache := NewCache()
	cache.Prime(site)
	robot := NewRobot(s, client, "server", 80, ModeHTTP11Pipelined.Config(), cache, nil, 0)
	s.Schedule(0, func() { robot.Start("/", Revalidate, nil) })
	s.Run()
	if !robot.Finished() {
		t.Fatal("not finished")
	}
	if clientDataSegs > 12 {
		t.Fatalf("client sent %d data segments for 43 requests; batching broken", clientDataSegs)
	}
}

func TestUnconditionalHTMLRevalidation(t *testing.T) {
	cfg := ModeMSIE.Config()
	cfg.RevalidateHTMLUnconditionally = true
	robot, _ := fetch(t, cfg, Revalidate, true)
	res := robot.Result()
	// The page comes back in full; images still validate.
	if res.Responses200 != 1 || res.Responses304 != 42 {
		t.Fatalf("responses: 200=%d 304=%d, want 1/42", res.Responses200, res.Responses304)
	}
}

func TestRobotRequestProtocolVersions(t *testing.T) {
	req := buildRequest(StyleRobot10, "GET", "/", "server", "HTTP/1.0")
	if !strings.HasPrefix(string(req.Marshal()), "GET / HTTP/1.0\r\n") {
		t.Fatal("HTTP/1.0 request line wrong")
	}
	req = buildRequest(StyleRobot11, "GET", "/", "server", "HTTP/1.1")
	if !req.Header.Has("Host") {
		t.Fatal("HTTP/1.1 request missing Host")
	}
}

func TestResultSnapshot(t *testing.T) {
	robot, _ := fetch(t, ModeHTTP11Pipelined.Config(), FirstTime, false)
	res := robot.Result()
	if !res.Done || res.Requests != 43 || res.Errors != 0 {
		t.Fatalf("result: %+v", res)
	}
	site := testSite(t)
	if res.PayloadBytes < int64(site.TotalBytes()) {
		t.Fatalf("payload %d below site total %d", res.PayloadBytes, site.TotalBytes())
	}
}

// fetchFaulty runs one robot fetch against a server with the given
// (possibly fault-injecting) configuration. The link is WAN-like: the
// 45ms propagation delay keeps pipelined request batches in flight when
// the server closes early, which is what turns a naive close into RST.
func fetchFaulty(t *testing.T, cfg Config, srvCfg httpserver.Config) *Robot {
	t.Helper()
	s := sim.New()
	s.SetEventLimit(10_000_000)
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: 45 * time.Millisecond, BitsPerSecond: 1_500_000, MTU: 1500}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	httpserver.New(s, serverHost, 80, testSite(t), srvCfg, nil, 0)
	robot := NewRobot(s, client, "server", 80, cfg, NewCache(), nil, 0)
	s.Schedule(0, func() { robot.Start("/", FirstTime, nil) })
	s.Run()
	return robot
}

// TestFailConnRequeue reproduces the paper's §4 connection-management
// scenario: a server that closes naively after 5 responses while the
// pipelined client still has requests outstanding. The unread pipelined
// requests draw RST; the client must requeue the unanswered work on a
// fresh connection and still retrieve the complete site.
func TestFailConnRequeue(t *testing.T) {
	srvCfg := httpserver.Config{
		Profile: httpserver.ProfileApache, NoDelay: true,
		MaxRequestsPerConn: 5, NaiveClose: true,
	}
	t.Run("legacy", func(t *testing.T) {
		robot := fetchFaulty(t, ModeHTTP11Pipelined.Config(), srvCfg)
		res := robot.Result()
		if !robot.Finished() || !res.Done {
			t.Fatalf("robot did not finish: %+v", res)
		}
		if res.Responses200 != 43 {
			t.Fatalf("200s = %d, want 43", res.Responses200)
		}
		if res.PayloadBytes < int64(testSite(t).TotalBytes()) {
			t.Fatalf("payload %d below site total %d", res.PayloadBytes, testSite(t).TotalBytes())
		}
		if res.Retried == 0 || res.Errors == 0 {
			t.Fatalf("no retries/errors recorded: %+v", res)
		}
		if res.SocketsUsed < 2 {
			t.Fatalf("sockets = %d, want reconnects", res.SocketsUsed)
		}
	})
	t.Run("policy", func(t *testing.T) {
		cfg := ModeHTTP11Pipelined.Config()
		pol := faults.Default()
		cfg.Recovery = &pol
		robot := fetchFaulty(t, cfg, srvCfg)
		res := robot.Result()
		if !robot.Finished() || !res.Done {
			t.Fatalf("robot did not finish: %+v", res)
		}
		if res.Responses200 != 43 || res.RequestsFailed != 0 {
			t.Fatalf("200s = %d failed = %d, want 43/0", res.Responses200, res.RequestsFailed)
		}
		if res.PayloadBytes < int64(testSite(t).TotalBytes()) {
			t.Fatalf("payload %d below site total %d", res.PayloadBytes, testSite(t).TotalBytes())
		}
		if res.Retried == 0 || res.Retried > pol.RetryBudget {
			t.Fatalf("retried = %d, want within (0, %d]", res.Retried, pol.RetryBudget)
		}
		if res.RequestsRecovered == 0 {
			t.Fatalf("no recovered requests: %+v", res)
		}
		if res.Fallbacks == 0 {
			t.Fatalf("pipelined → serial fallback not recorded: %+v", res)
		}
	})
}

// TestStallTimeout wedges the server after the headers of one response
// (a stall-forever fault). Without a Recovery policy the fetch would
// simply hang; with one, the progress watchdog must abort the silent
// connection and recover the remaining requests on a fresh one.
func TestStallTimeout(t *testing.T) {
	srvCfg := httpserver.Config{
		Profile: httpserver.ProfileApache, NoDelay: true,
		Faults: faults.ServerFaults{StallResponse: 3},
	}
	cfg := ModeHTTP11Pipelined.Config()
	pol := faults.Default()
	cfg.Recovery = &pol
	robot := fetchFaulty(t, cfg, srvCfg)
	res := robot.Result()
	if !robot.Finished() || !res.Done {
		t.Fatalf("robot hung on stalled connection: %+v", res)
	}
	if res.Timeouts == 0 {
		t.Fatalf("watchdog never fired: %+v", res)
	}
	if res.Responses200 != 43 || res.RequestsFailed != 0 {
		t.Fatalf("200s = %d failed = %d, want 43/0", res.Responses200, res.RequestsFailed)
	}
}
