package causality

import "repro/internal/sim"

// DiffRow compares one category across two runs: delta = B - A, so a
// negative delta is time run B saved.
type DiffRow struct {
	Cat   Category
	A, B  sim.Duration
	Delta sim.Duration
}

// Diff explains why one run was faster than another: the per-category
// totals side by side, largest absolute delta first (ties in category
// order, so equal-delta rows render deterministically).
func Diff(a, b *Analysis) []DiffRow {
	rows := make([]DiffRow, 0, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		rows = append(rows, DiffRow{Cat: c, A: a.Total[c], B: b.Total[c], Delta: b.Total[c] - a.Total[c]})
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && abs(rows[j].Delta) > abs(rows[j-1].Delta); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	return rows
}

func abs(d sim.Duration) sim.Duration {
	if d < 0 {
		return -d
	}
	return d
}
