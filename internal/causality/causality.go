// Package causality turns the obs event bus into an answer to "where
// did the time go?". For every completed client request it decomposes
// elapsed time (queued → done) into exclusive, exhaustive categories —
// connection setup, RTO recovery, Nagle holds, mux flow-control
// stalls, TCP window (slow-start) stalls, server think time, pipeline
// head-of-line queueing, and wire transmission — with an exact
// conservation invariant: because the simulator clock is integer
// nanoseconds and the categories partition the request window, the
// category sum equals the elapsed time exactly, not approximately.
//
// It also reconstructs the page-load dependency chain (the critical
// path): walking back from the last-finishing request through the
// binding constraint at each step — the previous response serialized
// on the same connection, or the discovery of the object in the HTML —
// yields the chain of requests that explains the page time, and the
// same partition restricted to the chain segments explains *why* that
// chain was slow.
//
// The analyzer is a passive bus subscriber: it only reads events, so
// an armed run is byte-identical to an unarmed one (pinned by test,
// like the timeline and telemetry layers).
package causality

import (
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Category is one exclusive delay bucket. Declaration order is blame
// priority: when two causes overlap an instant (e.g. an RTO fires
// while the server thinks), the earlier category claims it.
type Category int

const (
	// CatConnect is TCP connection setup: SYN sent until ESTABLISHED.
	CatConnect Category = iota
	// CatRTO is retransmission-timeout recovery: the dead time a
	// retransmission timer spent running before it fired.
	CatRTO
	// CatNagle is sender data held back by the Nagle algorithm.
	CatNagle
	// CatFlow is a mux sender blocked on stream or connection
	// flow-control windows.
	CatFlow
	// CatSlowStart is a TCP sender with data pending but the
	// congestion window exhausted: waiting for the ACK clock, the
	// slow-start cost the paper counts in round trips.
	CatSlowStart
	// CatServer is server think time: request parsed, response not yet
	// issued (per-request CPU cost).
	CatServer
	// CatHOL is head-of-line queueing: the request existed but had not
	// been written yet (waiting for a free socket, a pipeline slot, or
	// earlier requests on the same connection).
	CatHOL
	// CatWire is the residual after the request was written: bytes
	// flowing, constrained only by link bandwidth and propagation.
	CatWire

	// NumCategories bounds a Blame vector.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"connect", "rto", "nagle", "flow", "slowstart", "server", "hol", "wire",
}

// String names the category.
func (c Category) String() string {
	if c >= 0 && c < NumCategories {
		return categoryNames[c]
	}
	return "unknown"
}

// MetricKey is the category's exp.Metrics / CSV column name.
func (c Category) MetricKey() string { return "blame_" + c.String() + "_ms" }

// Blame is a per-category delay vector in simulator time.
type Blame [NumCategories]sim.Duration

// Add accumulates o into b.
func (b *Blame) Add(o Blame) {
	for i := range b {
		b[i] += o[i]
	}
}

// Sum is the total across categories.
func (b Blame) Sum() sim.Duration {
	var t sim.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Ms converts one category to milliseconds.
func (b Blame) Ms(c Category) float64 { return float64(b[c]) / 1e6 }

// RequestBlame is one completed client request's attribution.
type RequestBlame struct {
	Span    obs.SpanID
	Path    string
	Conn    obs.ConnID
	Pushed  bool
	Elapsed sim.Duration // Done - Queued; equals B.Sum() exactly
	OnPath  bool         // member of the critical path
	B       Blame
}

// ChainLink is one segment of the critical path: span Span explains
// the page interval [From, To).
type ChainLink struct {
	Span     obs.SpanID
	From, To sim.Time
}

// Analysis is the per-run attribution result.
type Analysis struct {
	// Requests holds every completed client-originated span (proxy
	// upstream fetches are excluded), in span order.
	Requests []RequestBlame
	// Total sums Requests' blame vectors; Elapsed sums their elapsed
	// times (request-seconds, not wall seconds: concurrent requests
	// each count their own wait).
	Total   Blame
	Elapsed sim.Duration
	// Chain is the critical path, earliest first. CriticalPath is its
	// length (the page interval it tiles) and CriticalBlame the same
	// partition restricted to the chain segments; CriticalBlame.Sum()
	// == CriticalPath exactly.
	Chain         []ChainLink
	CriticalPath  sim.Duration
	CriticalBlame Blame
}

// farFuture caps intervals still open when the run ends; window
// clipping bounds them to the spans they touch.
const farFuture = sim.Time(math.MaxInt64)

// catNone marks a tracked interval that maps to no category (e.g. a
// peer-receive-window stall, which is charged to the residual).
const catNone = Category(-1)

// interval is one closed cause interval on a connection.
type interval struct {
	cat        Category
	start, end sim.Time
}

// connTrack accumulates cause intervals for one connection.
type connTrack struct {
	ivs []interval

	connectStart sim.Time
	stallStart   sim.Time
	stallCat     Category
	flowStart    sim.Time
	serverOpen   []sim.Time // FIFO queue of open server-recv instants
}

// Collector is the analyzer subscriber: feed it every bus event via
// Observe, then call Finish once the run completes. It never mutates
// anything it observes.
type Collector struct {
	tracks map[obs.ConnID]*connTrack
}

// NewCollector returns an empty analyzer.
func NewCollector() *Collector {
	return &Collector{tracks: make(map[obs.ConnID]*connTrack)}
}

func (c *Collector) track(id obs.ConnID) *connTrack {
	t := c.tracks[id]
	if t == nil {
		t = &connTrack{connectStart: obs.NoTime, stallStart: obs.NoTime, flowStart: obs.NoTime}
		c.tracks[id] = t
	}
	return t
}

// Observe consumes one bus event. Suitable as a Bus.Subscribe callback.
func (c *Collector) Observe(ev obs.Event) {
	switch ev.Kind {
	case obs.KindConnOpen:
		c.track(ev.Conn).connectStart = ev.Time
	case obs.KindConnState:
		if ev.Note == "ESTABLISHED" {
			t := c.track(ev.Conn)
			if t.connectStart != obs.NoTime {
				t.ivs = append(t.ivs, interval{CatConnect, t.connectStart, ev.Time})
				t.connectStart = obs.NoTime
			}
		}
	case obs.KindRTOFire:
		start := ev.Time - sim.Time(ev.A) // A = the timeout that just elapsed
		if start < 0 {
			start = 0
		}
		t := c.track(ev.Conn)
		t.ivs = append(t.ivs, interval{CatRTO, start, ev.Time})
	case obs.KindSendStall:
		t := c.track(ev.Conn)
		cat := catNone
		switch ev.Note {
		case "nagle":
			cat = CatNagle
		case "cwnd":
			cat = CatSlowStart
		}
		t.stallStart, t.stallCat = ev.Time, cat
	case obs.KindSendResume:
		t := c.track(ev.Conn)
		if t.stallStart != obs.NoTime {
			if t.stallCat != catNone {
				t.ivs = append(t.ivs, interval{t.stallCat, t.stallStart, ev.Time})
			}
			t.stallStart = obs.NoTime
		}
	case obs.KindFlowStall:
		t := c.track(ev.Conn)
		if t.flowStart == obs.NoTime {
			t.flowStart = ev.Time
		}
	case obs.KindMuxFrame:
		// The first DATA frame after a flow stall closes it: the
		// window update arrived and the pump moved again.
		if ev.Note != "DATA" {
			return
		}
		t := c.track(ev.Conn)
		if t.flowStart != obs.NoTime {
			t.ivs = append(t.ivs, interval{CatFlow, t.flowStart, ev.Time})
			t.flowStart = obs.NoTime
		}
	case obs.KindServerRecv:
		t := c.track(ev.Conn)
		t.serverOpen = append(t.serverOpen, ev.Time)
	case obs.KindServerSend:
		t := c.track(ev.Conn)
		if len(t.serverOpen) > 0 {
			t.ivs = append(t.ivs, interval{CatServer, t.serverOpen[0], ev.Time})
			t.serverOpen = t.serverOpen[1:]
		}
	}
}

// close caps every still-open interval: a connection that never
// established, a stall never resumed, a request never answered. The
// spans such intervals could affect are abandoned (never Done) and
// excluded anyway; clipping bounds the rest.
func (t *connTrack) close() {
	if t.connectStart != obs.NoTime {
		t.ivs = append(t.ivs, interval{CatConnect, t.connectStart, farFuture})
		t.connectStart = obs.NoTime
	}
	if t.stallStart != obs.NoTime {
		if t.stallCat != catNone {
			t.ivs = append(t.ivs, interval{t.stallCat, t.stallStart, farFuture})
		}
		t.stallStart = obs.NoTime
	}
	if t.flowStart != obs.NoTime {
		t.ivs = append(t.ivs, interval{CatFlow, t.flowStart, farFuture})
		t.flowStart = obs.NoTime
	}
	for _, s := range t.serverOpen {
		t.ivs = append(t.ivs, interval{CatServer, s, farFuture})
	}
	t.serverOpen = nil
}

// Finish closes open intervals and computes the analysis from the
// bus's connection and span tables. The collector must have observed
// every event the bus recorded.
func (c *Collector) Finish(b *obs.Bus) *Analysis {
	for _, t := range c.tracks {
		t.close()
	}
	conns, spans := b.Conns(), b.Spans()

	// A connection's peer is the endpoint with the reversed address
	// pair; a client span is blamed against intervals on its own
	// connection *and* the peer, so a server-side Nagle hold (the
	// paper's §4 stall) lands on the client request it delayed.
	byAddr := make(map[string]obs.ConnID, len(conns))
	for _, ci := range conns {
		byAddr[ci.Local+"|"+ci.Remote] = ci.ID
	}
	peer := make(map[obs.ConnID]obs.ConnID, len(conns))
	for _, ci := range conns {
		if p, ok := byAddr[ci.Remote+"|"+ci.Local]; ok {
			peer[ci.ID] = p
		}
	}

	a := &Analysis{}
	for _, sp := range spans {
		if sp.Via != "" || sp.Done == obs.NoTime || sp.Queued == obs.NoTime {
			continue // upstream hop, abandoned, or never started
		}
		tracks := c.spanTracks(sp.Conn, peer)
		bl := blameWindow(tracks, sp.Queued, sp.Written, sp.Done)
		rb := RequestBlame{
			Span: sp.ID, Path: sp.Path, Conn: sp.Conn, Pushed: sp.Pushed,
			Elapsed: sp.Done.Sub(sp.Queued), B: bl,
		}
		a.Requests = append(a.Requests, rb)
		a.Total.Add(bl)
		a.Elapsed += rb.Elapsed
	}

	c.criticalPath(a, spans, peer)
	return a
}

// spanTracks gathers the interval sources relevant to a span: its
// connection and that connection's peer.
func (c *Collector) spanTracks(conn obs.ConnID, peer map[obs.ConnID]obs.ConnID) []*connTrack {
	var out []*connTrack
	if t, ok := c.tracks[conn]; ok {
		out = append(out, t)
	}
	if p, ok := peer[conn]; ok {
		if t, ok := c.tracks[p]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Analyze replays a finished bus through a fresh collector. Equivalent
// to subscribing Observe for the whole run: the bus retains every
// event in order.
func Analyze(b *obs.Bus) *Analysis {
	c := NewCollector()
	for _, ev := range b.Events() {
		c.Observe(ev)
	}
	return c.Finish(b)
}

// blameWindow partitions the window [q, d) by sweeping its elementary
// segments: each segment goes to the highest-priority cause interval
// covering it, and segments no cause claims go to head-of-line
// queueing before the request hit the wire at w, wire transmission
// after. Segment lengths tile the window, so the result sums to d - q
// exactly — the conservation invariant.
func blameWindow(tracks []*connTrack, q, w, d sim.Time) Blame {
	var bl Blame
	if d <= q {
		return bl
	}
	// Clip candidate intervals to the window and collect boundaries.
	var ivs []interval
	points := make([]sim.Time, 0, 16)
	points = append(points, q, d)
	if w != obs.NoTime && w > q && w < d {
		points = append(points, w)
	}
	for _, t := range tracks {
		for _, iv := range t.ivs {
			s, e := iv.start, iv.end
			if s < q {
				s = q
			}
			if e > d {
				e = d
			}
			if e <= s {
				continue
			}
			ivs = append(ivs, interval{iv.cat, s, e})
			points = append(points, s, e)
		}
	}
	sortTimes(points)
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if b <= a {
			continue
		}
		best := catNone
		for _, iv := range ivs {
			if iv.start <= a && iv.end >= b && (best == catNone || iv.cat < best) {
				best = iv.cat
			}
		}
		if best == catNone {
			if w == obs.NoTime || a < w {
				best = CatHOL
			} else {
				best = CatWire
			}
		}
		bl[best] += b.Sub(a)
	}
	return bl
}

// sortTimes is an insertion sort: boundary sets are small and almost
// sorted, and avoiding sort.Slice keeps the hot path allocation-free.
func sortTimes(ts []sim.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
