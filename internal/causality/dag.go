package causality

import "repro/internal/obs"

// PerfettoPath converts the critical-path chain into the overlay
// slices obs.Bus.WritePerfettoPath renders as a highlighted track.
func (a *Analysis) PerfettoPath() []obs.PathSlice {
	if a == nil {
		return nil
	}
	out := make([]obs.PathSlice, len(a.Chain))
	for i, l := range a.Chain {
		out[i] = obs.PathSlice{Span: l.Span, From: l.From, To: l.To}
	}
	return out
}

// criticalPath reconstructs the page-load dependency chain and fills
// a.Chain / a.CriticalPath / a.CriticalBlame, marking the member
// requests OnPath.
//
// Walking back from the last-finishing request, each step follows the
// binding constraint: if the previous response on the same connection
// finished after this request was queued, that serialization gated it
// (pipeline and mux scheduling order); otherwise the request started
// the moment it was discovered, which points back at the root
// document's arrival (HTML parse → object, and push promises, which
// are queued when promised). The chain segments tile the page interval
// contiguously, so CriticalBlame.Sum() == CriticalPath exactly.
func (c *Collector) criticalPath(a *Analysis, spans []obs.SpanInfo, peer map[obs.ConnID]obs.ConnID) {
	// Client spans in queue order; the first is the root document.
	var client []*obs.SpanInfo
	for i := range spans {
		sp := &spans[i]
		if sp.Via != "" || sp.Done == obs.NoTime || sp.Queued == obs.NoTime {
			continue
		}
		client = append(client, sp)
	}
	if len(client) == 0 {
		return
	}
	root := client[0]
	last := client[0]
	for _, sp := range client {
		if sp.Done >= last.Done {
			last = sp
		}
	}

	// connPred finds the previous response serialized on s's
	// connection: the latest-finishing span whose response completed
	// before s's first byte. Overlapping mux streams have no such
	// predecessor and fall back to the discovery edge.
	connPred := func(s *obs.SpanInfo) *obs.SpanInfo {
		var best *obs.SpanInfo
		for _, p := range client {
			if p == s || p.Conn != s.Conn {
				continue
			}
			if s.FirstByte != obs.NoTime && p.Done <= s.FirstByte {
				if best == nil || p.Done > best.Done {
					best = p
				}
			}
		}
		return best
	}

	cur, cut := last, last.Done
	for steps := 0; steps <= len(client)+1; steps++ {
		p := connPred(cur)
		gate := cur.Queued
		if p != nil && p.Done > gate {
			gate = p.Done
		} else {
			p = nil
		}
		if gate > cut {
			gate = cut
		}
		if cut > gate {
			a.Chain = append(a.Chain, ChainLink{Span: cur.ID, From: gate, To: cut})
			a.CriticalBlame.Add(blameWindow(c.spanTracks(cur.Conn, peer), gate, cur.Written, cut))
		}
		if p != nil {
			cur, cut = p, gate
			continue
		}
		if cur == root || gate <= root.Queued {
			break
		}
		// Discovery edge: the object was found while the root document
		// arrived; the remainder of the path is the root up to that
		// discovery instant.
		cur, cut = root, gate
	}

	// Earliest-first, and the path length is what the chain tiles.
	for i, j := 0, len(a.Chain)-1; i < j; i, j = i+1, j-1 {
		a.Chain[i], a.Chain[j] = a.Chain[j], a.Chain[i]
	}
	for _, l := range a.Chain {
		a.CriticalPath += l.To.Sub(l.From)
	}
	onPath := make(map[obs.SpanID]bool, len(a.Chain))
	for _, l := range a.Chain {
		onPath[l.Span] = true
	}
	for i := range a.Requests {
		a.Requests[i].OnPath = onPath[a.Requests[i].Span]
	}
}
