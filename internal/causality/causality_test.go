package causality

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n * 1e6) }

// TestBlameWindowPartition pins the sweep on a hand-checkable layout:
// overlaps resolve by priority order, uncovered time splits into HOL
// before the write instant and wire after, and the sum is exact.
func TestBlameWindowPartition(t *testing.T) {
	tr := &connTrack{ivs: []interval{
		{CatConnect, ms(0), ms(10)},
		{CatServer, ms(5), ms(20)}, // loses [5,10) to the connect interval
		{CatNagle, ms(30), ms(40)},
	}}
	bl := blameWindow([]*connTrack{tr}, ms(0), ms(25), ms(50))
	var want Blame
	want[CatConnect] = ms(10).Sub(ms(0))
	want[CatServer] = ms(20).Sub(ms(10))
	want[CatHOL] = ms(25).Sub(ms(20))
	want[CatWire] = ms(30).Sub(ms(25)) + ms(50).Sub(ms(40))
	want[CatNagle] = ms(40).Sub(ms(30))
	if bl != want {
		t.Fatalf("blame = %v, want %v", bl, want)
	}
	if bl.Sum() != ms(50).Sub(ms(0)) {
		t.Fatalf("sum %v != window length", bl.Sum())
	}
}

// TestBlameWindowClipsOpenIntervals: an interval capped at farFuture
// (never closed during the run) is clipped to the window, and an
// interval outside the window contributes nothing.
func TestBlameWindowClipsOpenIntervals(t *testing.T) {
	tr := &connTrack{ivs: []interval{
		{CatSlowStart, ms(10), farFuture},
		{CatRTO, ms(100), ms(200)}, // beyond the window
	}}
	bl := blameWindow([]*connTrack{tr}, ms(0), ms(5), ms(50))
	if bl[CatSlowStart] != ms(50).Sub(ms(10)) {
		t.Fatalf("slowstart = %v, want clipped 40ms", bl[CatSlowStart])
	}
	if bl[CatRTO] != 0 {
		t.Fatalf("rto = %v, want 0 (interval outside window)", bl[CatRTO])
	}
	if bl.Sum() != ms(50).Sub(ms(0)) {
		t.Fatalf("sum %v != window length", bl.Sum())
	}
}

// TestDiffOrder: the diff sorts by absolute delta, descending, with
// category order breaking ties.
func TestDiffOrder(t *testing.T) {
	var a, b Analysis
	a.Total[CatConnect], b.Total[CatConnect] = 100, 10 // |delta| 90
	a.Total[CatWire], b.Total[CatWire] = 5, 10         // |delta| 5
	a.Total[CatServer], b.Total[CatServer] = 7, 7      // |delta| 0
	rows := Diff(&a, &b)
	if len(rows) != int(NumCategories) {
		t.Fatalf("%d rows, want %d", len(rows), NumCategories)
	}
	if rows[0].Cat != CatConnect || rows[0].Delta != -90 {
		t.Fatalf("rows[0] = %+v, want connect delta -90", rows[0])
	}
	if rows[1].Cat != CatWire || rows[1].Delta != 5 {
		t.Fatalf("rows[1] = %+v, want wire delta 5", rows[1])
	}
	for i := 1; i < len(rows); i++ {
		if abs(rows[i].Delta) > abs(rows[i-1].Delta) {
			t.Fatalf("rows not sorted by |delta|: %+v before %+v", rows[i-1], rows[i])
		}
	}
}

// TestObserveStallLifecycle: a stall without a resume is capped by
// close(), and an unknown stall cause maps to no category (residual).
func TestObserveStallLifecycle(t *testing.T) {
	c := NewCollector()
	c.Observe(obs.Event{Kind: obs.KindSendStall, Conn: 1, Time: ms(10), Note: "nagle"})
	c.Observe(obs.Event{Kind: obs.KindSendResume, Conn: 1, Time: ms(15)})
	c.Observe(obs.Event{Kind: obs.KindSendStall, Conn: 1, Time: ms(20), Note: "rwnd"})
	c.Observe(obs.Event{Kind: obs.KindSendResume, Conn: 1, Time: ms(25)})
	c.Observe(obs.Event{Kind: obs.KindSendStall, Conn: 1, Time: ms(30), Note: "cwnd"})
	tr := c.tracks[1]
	tr.close()
	if len(tr.ivs) != 2 {
		t.Fatalf("%d intervals, want 2 (rwnd maps to none): %+v", len(tr.ivs), tr.ivs)
	}
	if tr.ivs[0] != (interval{CatNagle, ms(10), ms(15)}) {
		t.Fatalf("ivs[0] = %+v", tr.ivs[0])
	}
	if tr.ivs[1] != (interval{CatSlowStart, ms(30), farFuture}) {
		t.Fatalf("ivs[1] = %+v (unresumed stall must cap at farFuture)", tr.ivs[1])
	}
}

// FuzzBlameConservation hammers blameWindow with pseudo-random interval
// soups and window boundaries: whatever the overlap structure, the
// category sum must equal the window length exactly.
func FuzzBlameConservation(f *testing.F) {
	f.Add(uint64(1), int64(0), int64(1e9), int64(5e8), uint8(6))
	f.Add(uint64(42), int64(1e6), int64(2e6), int64(-1), uint8(12))
	f.Add(uint64(7), int64(3e9), int64(3e9), int64(3e9), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, qn, dn, wn int64, n uint8) {
		const horizon = int64(1) << 40
		if qn < 0 || dn < 0 || qn > horizon || dn > horizon {
			t.Skip("window outside the simulated horizon")
		}
		q, d := sim.Time(qn), sim.Time(dn)
		w := sim.Time(wn)
		if wn < 0 {
			w = obs.NoTime
		}
		rng := seed | 1
		next := func() int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int64(rng >> 11) // always non-negative
		}
		tr := &connTrack{}
		for i := 0; i < int(n%32); i++ {
			s := sim.Time(next() % horizon)
			e := s.Add(sim.Duration(next() % (horizon >> 10)))
			if next()%8 == 0 {
				e = farFuture // open interval, as close() leaves them
			}
			tr.ivs = append(tr.ivs, interval{Category(next() % int64(NumCategories)), s, e})
		}
		bl := blameWindow([]*connTrack{tr}, q, w, d)
		var want sim.Duration
		if d > q {
			want = d.Sub(q)
		}
		if got := bl.Sum(); got != want {
			t.Fatalf("blame sum %d != window %d (q=%d w=%d d=%d ivs=%+v)", got, want, q, w, d, tr.ivs)
		}
		for c := Category(0); c < NumCategories; c++ {
			if bl[c] < 0 {
				t.Fatalf("negative blame %s = %d", c, bl[c])
			}
		}
	})
}
