package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each iteration regenerates the experiment on the simulated
// testbed; the reproduced quantities (packets, seconds of virtual time,
// byte totals) are attached as custom benchmark metrics so `go test
// -bench . -benchmem` prints the same rows the paper reports.
//
//	BenchmarkTable4JigsawLAN-1  ...  181 pipeline_first_pa  0.49 pipeline_first_sec ...

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/mux"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

// benchSite returns the shared Microscape site (synthesized once).
func benchSite(b *testing.B) *webgen.Site {
	b.Helper()
	site, err := core.DefaultSite()
	if err != nil {
		b.Fatal(err)
	}
	return site
}

// reportRow attaches one table row's cells as benchmark metrics.
func reportRow(b *testing.B, prefix string, c core.Cell) {
	b.ReportMetric(c.Packets, prefix+"_pa")
	b.ReportMetric(c.Seconds, prefix+"_sec")
	b.ReportMetric(c.Bytes, prefix+"_bytes")
}

// BenchmarkTable1Environments measures a bare SYN/SYN-ACK/ACK handshake
// probe in each environment, confirming the Table 1 RTTs.
func BenchmarkTable1Environments(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, env := range netem.Environments {
			sc := core.Scenario{
				Server: httpserver.ProfileApache, Client: httpclient.ModeHTTP11Serial,
				Env: env, Workload: httpclient.Revalidate, Seed: uint64(i + 1),
			}
			cfg := httpclient.ModeHTTP11Serial.Config()
			cfg.PageOnly = true
			sc.ClientOverride = &cfg
			res, err := core.Run(sc, site)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Elapsed.Seconds(), env.String()+"_probe_sec")
		}
	}
}

func mainTableBench(b *testing.B, number int) {
	site := benchSite(b)
	b.ResetTimer()
	var tab core.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = core.Sweep{Runs: 1}.MainTable(number, site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, row := range tab.Rows {
		key := map[string]string{
			"HTTP/1.0":                          "http10",
			"HTTP/1.1":                          "http11",
			"HTTP/1.1 Pipelined":                "pipeline",
			"HTTP/1.1 Pipelined w. compression": "pipelinez",
		}[row.Label]
		reportRow(b, key+"_first", row.First)
		reportRow(b, key+"_reval", row.Reval)
	}
}

// BenchmarkTable3InitialTuning regenerates the initial (untuned) LAN
// revalidation investigation.
func BenchmarkTable3InitialTuning(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.Table3(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		key := map[string]string{
			"HTTP/1.0":            "http10",
			"HTTP/1.1 Persistent": "persistent",
			"HTTP/1.1 Pipeline":   "pipeline",
		}[r.Label]
		b.ReportMetric(r.PktsTotal, key+"_pa")
		b.ReportMetric(r.Elapsed, key+"_sec")
	}
}

// Tables 4-9: server × environment pages.
func BenchmarkTable4JigsawLAN(b *testing.B) { mainTableBench(b, 4) }
func BenchmarkTable5ApacheLAN(b *testing.B) { mainTableBench(b, 5) }
func BenchmarkTable6JigsawWAN(b *testing.B) { mainTableBench(b, 6) }
func BenchmarkTable7ApacheWAN(b *testing.B) { mainTableBench(b, 7) }
func BenchmarkTable8JigsawPPP(b *testing.B) { mainTableBench(b, 8) }
func BenchmarkTable9ApachePPP(b *testing.B) { mainTableBench(b, 9) }

func browserTableBench(b *testing.B, number int) {
	site := benchSite(b)
	b.ResetTimer()
	var tab core.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = core.Sweep{Runs: 1}.BrowserTable(number, site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, row := range tab.Rows {
		key := "netscape"
		if row.Label == "Internet Explorer" {
			key = "msie"
		}
		reportRow(b, key+"_first", row.First)
		reportRow(b, key+"_reval", row.Reval)
	}
}

// BenchmarkTable10BrowsersJigsaw and 11: product browsers over PPP.
func BenchmarkTable10BrowsersJigsaw(b *testing.B) { browserTableBench(b, 10) }
func BenchmarkTable11BrowsersApache(b *testing.B) { browserTableBench(b, 11) }

// BenchmarkModemCompression regenerates the §8.2.1 single-GET modem
// comparison (paper: 67 packets/12.21s uncompressed vs 21/4.35 deflated).
func BenchmarkModemCompression(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.ModemRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.ModemTable(site, httpserver.ProfileJigsaw)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].Packets, "raw_pa")
	b.ReportMetric(rows[0].Seconds, "raw_sec")
	b.ReportMetric(rows[1].Seconds, "v42bis_sec")
	b.ReportMetric(rows[2].Packets, "deflate_pa")
	b.ReportMetric(rows[2].Seconds, "deflate_sec")
}

// BenchmarkTagCaseCompression regenerates the markup-case deflate note
// (paper: lower ≈ .27 vs mixed ≈ .35).
func BenchmarkTagCaseCompression(b *testing.B) {
	var rows []core.TagCaseRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.TagCaseTable()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].Ratio, "lower_ratio")
	b.ReportMetric(rows[1].Ratio, "mixed_ratio")
	b.ReportMetric(rows[2].Ratio, "upper_ratio")
}

// BenchmarkCSSReplacement regenerates Figure 1 and the whole-page
// image→CSS analysis.
func BenchmarkCSSReplacement(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rep webgen.CSSReport
	for i := 0; i < b.N; i++ {
		rep = site.CSSReplacements()
	}
	b.StopTimer()
	fig := webgen.FigureOneReplacement()
	b.ReportMetric(float64(fig.GIFBytes), "fig1_gif_bytes")
	b.ReportMetric(float64(fig.CSSBytes()), "fig1_css_bytes")
	b.ReportMetric(float64(rep.RequestsSaved), "requests_saved")
	b.ReportMetric(float64(rep.NetSavings()), "net_bytes_saved")
}

// BenchmarkPNGConversion regenerates the GIF→PNG / animated GIF→MNG
// experiment (paper: 103299→92096 and 24988→16329 bytes).
func BenchmarkPNGConversion(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rep webgen.ConversionReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = site.ConvertImages()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.StaticGIF), "static_gif_bytes")
	b.ReportMetric(float64(rep.StaticPNG), "static_png_bytes")
	b.ReportMetric(float64(rep.AnimGIF), "anim_gif_bytes")
	b.ReportMetric(float64(rep.AnimMNG), "anim_mng_bytes")
}

// BenchmarkNagleInteraction regenerates the Nagle/delayed-ACK ablation.
func BenchmarkNagleInteraction(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.NagleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.NagleTable(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[2].Seconds, "serial_nodelay_sec")
	b.ReportMetric(rows[3].Seconds, "serial_nagle_sec")
}

// BenchmarkResetScenario regenerates the connection-management (server
// early-close) experiment.
func BenchmarkResetScenario(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.ResetRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.ResetTable(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].Seconds, "graceful_sec")
	b.ReportMetric(rows[1].Seconds, "naive_sec")
	b.ReportMetric(rows[1].Errors, "naive_resets")
}

// BenchmarkFlushPolicyAblation sweeps the pipelining buffer/timer grid.
func BenchmarkFlushPolicyAblation(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.FlushRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.FlushAblation(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	best := rows[0]
	for _, r := range rows {
		if r.Seconds < best.Seconds {
			best = r
		}
	}
	b.ReportMetric(float64(best.BufferSize), "best_buffer_bytes")
	b.ReportMetric(best.Seconds, "best_sec")
}

// BenchmarkScenarioThroughput measures raw simulator speed: one pipelined
// WAN first-time retrieval per iteration.
func BenchmarkScenarioThroughput(b *testing.B) {
	site := benchSite(b)
	sc := core.Scenario{
		Server: httpserver.ProfileApache, Client: httpclient.ModeHTTP11Pipelined,
		Env: netem.WAN, Workload: httpclient.FirstTime, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sc, site); err != nil {
			b.Fatal(err)
		}
	}
}

// engineBenchState drives a self-perpetuating timer population: every
// firing schedules a successor, so the pending set stays at its seeded
// depth — the shape of a population-scale run where thousands of
// connections each keep a handful of timers live.
type engineBenchState struct {
	s    *sim.Simulator
	rng  *sim.Rand
	left int
}

func engineBenchFire(a any) {
	st := a.(*engineBenchState)
	if st.left == 0 {
		return
	}
	st.left--
	// 1 in 8 events is retransmission/delayed-ACK-scale (out to 200ms);
	// the rest are packet-scale (µs) — the simulator's observed mix.
	var d time.Duration
	if st.left&7 == 0 {
		d = time.Duration(st.rng.Intn(int(200 * time.Millisecond)))
	} else {
		d = time.Duration(st.rng.Intn(int(500 * time.Microsecond)))
	}
	st.s.ScheduleArg(d, engineBenchFire, st)
}

func engineWorkload(e sim.Engine, depth, events int) time.Duration {
	s := sim.NewWithEngine(e)
	st := &engineBenchState{s: s, rng: sim.NewRand(1), left: events}
	start := time.Now()
	for i := 0; i < depth; i++ {
		s.ScheduleArg(time.Duration(st.rng.Intn(int(500*time.Microsecond))), engineBenchFire, st)
	}
	s.Run()
	return time.Since(start)
}

// BenchmarkEngine pins the event-engine redesign: the same deep mixed
// timer workload on the timer wheel and on the legacy heap queue, with
// the throughput of each — and the wheel:heap ratio — attached as
// metrics so perfdiff gates the speedup, not an anecdote.
func BenchmarkEngine(b *testing.B) {
	const depth, events = 4096, 300_000
	var wheel, heap time.Duration
	for i := 0; i < b.N; i++ {
		wheel += engineWorkload(sim.EngineWheel, depth, events)
		heap += engineWorkload(sim.EngineHeap, depth, events)
	}
	total := float64(events) * float64(b.N)
	wheelEPS := total / wheel.Seconds()
	heapEPS := total / heap.Seconds()
	b.ReportMetric(wheelEPS, "events_per_sec")
	b.ReportMetric(heapEPS, "heap_events_per_sec")
	b.ReportMetric(wheelEPS/heapEPS, "engine_speedup_ratio")
}

// BenchmarkPacketPath measures the steady-state TCP wire path: bulk
// transfers over an established connection, reporting packet throughput
// and — the zero-alloc discipline's pinned number — heap allocations
// per simulated packet.
func BenchmarkPacketPath(b *testing.B) {
	const payloadLen = 2_000_000
	payload := make([]byte, payloadLen)

	s := sim.NewWithEngine(sim.EngineWheel)
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{BitsPerSecond: 100_000_000, PropagationDelay: 5 * time.Millisecond, MTU: 1500}
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))

	var srvConn *tcpsim.Conn
	server.Listen(80, tcpsim.Options{}, func(c *tcpsim.Conn) tcpsim.Handler {
		return &tcpsim.Callbacks{Data: func(c *tcpsim.Conn, d []byte) { srvConn = c }}
	})
	client.Dial("server", 80, tcpsim.Options{}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.Write([]byte("GET")) },
	})
	s.Run() // handshake + request; the connection stays open
	if srvConn == nil {
		b.Fatal("request never reached the server")
	}

	const runs = 4
	var allocs float64
	before := n.Packets()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		allocs += testing.AllocsPerRun(runs, func() {
			srvConn.Write(payload)
			s.Run()
		})
	}
	b.StopTimer()
	elapsed := time.Since(start)
	packets := n.Packets() - before
	perRun := float64(packets) / float64(b.N*(runs+1))
	b.ReportMetric(allocs/(float64(b.N)*perRun), "allocs_per_packet")
	b.ReportMetric(float64(packets)/elapsed.Seconds(), "packets_per_sec")
}

// BenchmarkSiteSynthesis measures Microscape generation (image search +
// HTML emission).
func BenchmarkSiteSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := webgen.Microscape(webgen.Options{Seed: uint64(i + 2)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeProbe regenerates the range-request ("poor man's
// multiplexing") experiment: revalidation after a site revision, with and
// without 512-byte metadata probes.
func BenchmarkRangeProbe(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.RangeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.RangeTable(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].MetadataSeconds, "plain_meta_sec")
	b.ReportMetric(rows[1].MetadataSeconds, "probe_meta_sec")
	b.ReportMetric(rows[1].Responses206, "probe_206s")
}

// BenchmarkHeaderRedundancy regenerates the compact-wire-representation
// estimate (paper: "an additional factor of five or ten").
func BenchmarkHeaderRedundancy(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.HeaderRedundancyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.HeaderRedundancy(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows[0].RequestBytes), "plain_bytes")
	b.ReportMetric(rows[1].Ratio, "stream_ratio")
	b.ReportMetric(rows[2].Ratio, "delta_ratio")
}

// BenchmarkInitialCwnd regenerates the slow-start initial-window ablation.
func BenchmarkInitialCwnd(b *testing.B) {
	site := benchSite(b)
	b.ResetTimer()
	var rows []core.CwndRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Sweep{Runs: 1}.CwndTable(site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].Seconds, "iw1_plain_sec")
	b.ReportMetric(rows[1].Seconds, "iw1_deflate_sec")
	b.ReportMetric(rows[2].Seconds, "iw2_plain_sec")
}

// BenchmarkMuxLoopback pins the mux framing layer's raw throughput: two
// sessions wired back to back in memory (no simulator, no network), the
// client opening a page's worth of streams per iteration and the server
// answering each with an 8 KB body. Frames per wall-clock second rides
// under the same hard perf gate as the event engine.
func BenchmarkMuxLoopback(b *testing.B) {
	const streams, objLen = 40, 8192
	body := make([]byte, objLen)
	reqFields := []mux.Field{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/object"},
		{Name: ":authority", Value: "server"},
	}
	respFields := []mux.Field{
		{Name: ":status", Value: "200"},
		{Name: "content-type", Value: "image/gif"},
	}
	var frames float64
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var client, server *mux.Session
		server = mux.NewServer(func(p []byte) { client.Feed(p) })
		client = mux.NewClient(func(p []byte) { server.Feed(p) })
		server.OnHeaders = func(st *mux.Stream, _ []mux.Field, _ bool) {
			server.WriteHeaders(st, respFields, false)
			server.WriteData(st, body, true)
		}
		done := 0
		client.OnData = func(_ *mux.Stream, _ []byte, end bool) {
			if end {
				done++
			}
		}
		client.Start()
		server.Start()
		for j := 0; j < streams; j++ {
			client.OpenStream(reqFields, true, 0)
		}
		if done != streams {
			b.Fatalf("completed %d streams, want %d", done, streams)
		}
		if err := client.CloseCheck(); err != nil {
			b.Fatal(err)
		}
		frames += float64(client.Stats.FramesSent + server.Stats.FramesSent)
	}
	b.StopTimer()
	b.ReportMetric(frames/time.Since(start).Seconds(), "mux_frames_per_sec")
}
