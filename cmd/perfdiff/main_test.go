package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchOld = `{
  "schema": "benchjson/1",
  "date": "2026-08-01",
  "benchmarks": [
    {"name": "Table4", "procs": 1, "iterations": 1, "ns_per_op": 1000,
     "metrics": {"pipeline_first_sec": 0.486, "pipeline_first_pa": 206}}
  ],
  "units": {"ns_per_op": "ns/op", "pipeline_first_sec": "seconds", "pipeline_first_pa": "packets"}
}`

// TestInjectedRegressionFails is the acceptance criterion: a snapshot
// with a significant injected regression must exit non-zero.
func TestInjectedRegressionFails(t *testing.T) {
	benchNew := strings.Replace(benchOld, "0.486", "0.986", 1) // ≈ +103%
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchNew)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on injected regression, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "REGRESS bench:Table4 pipeline_first_sec") {
		t.Errorf("regression line missing:\n%s", out)
	}
	if !strings.Contains(out, "1 regressions") {
		t.Errorf("summary missing regression count:\n%s", out)
	}
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchOld)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on identical snapshots, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 regressions") {
		t.Errorf("summary wrong:\n%s", stdout.String())
	}
}

func TestBelowThresholdPasses(t *testing.T) {
	benchNew := strings.Replace(benchOld, "0.486", "0.500", 1) // ≈ +2.9%
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchNew)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on below-threshold delta, want 0", code)
	}
	// But a tighter threshold flags it.
	if code := run([]string{"-threshold", "2", old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with -threshold 2, want 1", code)
	}
}

func TestAnnotateEmitsWarning(t *testing.T) {
	benchNew := strings.Replace(benchOld, "0.486", "0.986", 1)
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchNew)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-annotate", old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "::warning title=perfdiff regression::bench:Table4 pipeline_first_sec") {
		t.Errorf("no GitHub annotation:\n%s", stdout.String())
	}
}

// TestRunsPopulationsUseCIs: replicated httpperf runs form populations;
// a large delta whose CIs overlap must NOT gate.
func TestRunsPopulationsUseCIs(t *testing.T) {
	// Old cell: mean 10, tight. New cell: mean 13 (+30%) but enormous
	// spread, so the CIs overlap and the delta is noise.
	oldJSON := `{"runs": [
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 9.9},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 10.0},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 10.1}
	]}`
	newJSON := `{"runs": [
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 1.0},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 13.0},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 25.0}
	]}`
	old := write(t, "old.json", oldJSON)
	newer := write(t, "new.json", newJSON)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on overlapping-CI delta, want 0\n%s", code, stdout.String())
	}
	// The same means with tight new-side spread DO gate.
	tight := `{"runs": [
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 12.9},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 13.0},
	  {"experiment": "e", "scenario": "s", "elapsed_seconds": 13.1}
	]}`
	tightPath := write(t, "tight.json", tight)
	if code := run([]string{old, tightPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on disjoint-CI regression, want 1\n%s", code, stdout.String())
	}
}

func TestCSVInput(t *testing.T) {
	oldCSV := "experiment,scenario,seed,run,packets,elapsed_seconds\n" +
		"e,s,1,0,100,2.0\n" +
		"e,s,2,0,102,2.1\n"
	newCSV := "experiment,scenario,seed,run,packets,elapsed_seconds\n" +
		"e,s,1,0,300,2.0\n" +
		"e,s,2,0,302,2.1\n"
	old := write(t, "old.csv", oldCSV)
	newer := write(t, "new.csv", newCSV)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on tripled packets, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "e/s packets") || !strings.Contains(out, "[packets]") {
		t.Errorf("packets regression missing:\n%s", out)
	}
	// seed and run are bookkeeping: never compared.
	if strings.Contains(out, "e/s seed") || strings.Contains(out, "e/s run") {
		t.Errorf("bookkeeping columns compared:\n%s", out)
	}
}

// TestOnlyFilter: -only restricts the gate to matching metrics, so a
// regression outside the filter passes while one inside it fails.
func TestOnlyFilter(t *testing.T) {
	benchNew := strings.Replace(benchOld, "0.486", "0.986", 1) // regress _sec only
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchNew)
	var stdout, stderr bytes.Buffer
	// Filter matches only the untouched packets metric: no regression.
	if code := run([]string{"-only", "_pa$", old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d with -only excluding the regression, want 0\n%s", code, stdout.String())
	}
	// Filter matches the regressed metric: still gates.
	if code := run([]string{"-only", "pipeline_first_sec", old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with -only covering the regression, want 1\n%s", code, stdout.String())
	}
	// A filter matching nothing is a usage-level error (exit 2), so a CI
	// gate with a typoed pattern fails loudly instead of passing silently.
	if code := run([]string{"-only", "no_such_metric", old, newer}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d with -only matching nothing, want 2", code)
	}
	// Malformed regexp is a usage error.
	if code := run([]string{"-only", "(", old, newer}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d with malformed -only pattern, want 2", code)
	}
}

func TestBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"one-arg-only"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on bad usage, want 2", code)
	}
	garbage := write(t, "garbage.txt", "not a snapshot\n")
	ok := write(t, "ok.json", benchOld)
	if code := run([]string{garbage, ok}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on unrecognised input, want 2", code)
	}
	empty := write(t, "empty.json", `{"neither": true}`)
	if code := run([]string{empty, ok}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on shapeless JSON, want 2", code)
	}
}

// TestVerboseMetricSummary: -v adds a per-metric digest — cell count,
// mean delta, worst cell — without changing the gate's exit status.
func TestVerboseMetricSummary(t *testing.T) {
	benchNew := strings.Replace(benchOld, "0.486", "0.986", 1)
	old := write(t, "old.json", benchOld)
	newer := write(t, "new.json", benchNew)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-v", old, newer}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (-v must not change the gate)", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "metric pipeline_first_sec") {
		t.Errorf("no summary line for pipeline_first_sec:\n%s", out)
	}
	if !strings.Contains(out, "1 cells") || !strings.Contains(out, "worst +102.9% (bench:Table4)") {
		t.Errorf("summary line missing cell count or worst cell:\n%s", out)
	}
	if !strings.Contains(out, "[seconds]") {
		t.Errorf("summary line missing unit:\n%s", out)
	}
	// An unchanged metric still gets a summary line under -v, even though
	// its delta line is suppressed.
	if !strings.Contains(out, "metric pipeline_first_pa") {
		t.Errorf("unchanged metric absent from -v summary:\n%s", out)
	}

	// Without -v none of the summary lines appear.
	stdout.Reset()
	run([]string{old, newer}, &stdout, &stderr)
	if strings.Contains(stdout.String(), "metric pipeline_first_sec") {
		t.Errorf("summary printed without -v:\n%s", stdout.String())
	}
}

// TestEnvMismatchWarns: snapshots stamped on different machines compare,
// but perfdiff must say the deltas may be environmental.
func TestEnvMismatchWarns(t *testing.T) {
	stamped := strings.Replace(benchOld, `"schema": "benchjson/1",`,
		`"schema": "benchjson/1", "go": "go1.22.1", "gomaxprocs": 8, "cpu": "Xeon E5",`, 1)
	other := strings.Replace(benchOld, `"schema": "benchjson/1",`,
		`"schema": "benchjson/1", "go": "go1.24.0", "gomaxprocs": 2, "cpu": "EPYC 7543",`, 1)
	old := write(t, "old.json", stamped)
	newer := write(t, "new.json", other)
	var stdout, stderr bytes.Buffer
	if code := run([]string{old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on identical numbers, want 0 (env mismatch warns, never gates)", code)
	}
	errs := stderr.String()
	for _, frag := range []string{"environment mismatch", "go1.22.1", "go1.24.0", "gomaxprocs 8 vs 2", "cpu"} {
		if !strings.Contains(errs, frag) {
			t.Errorf("stderr missing %q:\n%s", frag, errs)
		}
	}

	// An unstamped baseline against a stamped snapshot stays silent: old
	// snapshots predate the stamp and must not warn forever.
	plain := write(t, "plain.json", benchOld)
	stderr.Reset()
	run([]string{plain, old}, &stdout, &stderr)
	if strings.Contains(stderr.String(), "environment mismatch") {
		t.Errorf("pre-stamp baseline warned:\n%s", stderr.String())
	}
}
