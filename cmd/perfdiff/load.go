package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// snapshotEnv is the environment header a benchjson snapshot carries
// (Go toolchain, OS/arch, parallelism, CPU model). Other formats carry
// none; missing fields stay empty and are never compared.
type snapshotEnv struct {
	Go         string
	GOOS       string
	GOARCH     string
	GOMAXPROCS int
	CPU        string
}

// mismatches compares two environment headers field by field, skipping
// any field either side left empty (old snapshots predate the stamp).
func (e snapshotEnv) mismatches(other snapshotEnv) []string {
	var out []string
	check := func(label, a, b string) {
		if a != "" && b != "" && a != b {
			out = append(out, fmt.Sprintf("%s %q vs %q", label, a, b))
		}
	}
	check("go", e.Go, other.Go)
	check("goos", e.GOOS, other.GOOS)
	check("goarch", e.GOARCH, other.GOARCH)
	check("cpu", e.CPU, other.CPU)
	if e.GOMAXPROCS > 0 && other.GOMAXPROCS > 0 && e.GOMAXPROCS != other.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs %d vs %d", e.GOMAXPROCS, other.GOMAXPROCS))
	}
	return out
}

// loadSamples reads a performance snapshot file and flattens it into
// Compare's sample form, together with the snapshot's environment
// header when the format carries one. Three formats are recognised by
// shape:
//
//   - benchjson snapshots ({"benchmarks": [...]}) — one value per
//     (benchmark, metric); cells are "bench:<Name>"
//   - httpperf -json output ({"runs": [...]}) — per-run metrics grouped
//     by experiment/scenario, so replicated runs become populations and
//     Compare can use their confidence intervals
//   - httpperf -csv metrics files (header starts "experiment,scenario")
func loadSamples(path string) ([]stats.Sample, snapshotEnv, error) {
	var env snapshotEnv
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, env, err
	}
	trimmed := strings.TrimSpace(string(data))
	switch {
	case strings.HasPrefix(trimmed, "{"):
		return loadJSON(data, path)
	case strings.HasPrefix(trimmed, "experiment,scenario"):
		samples, err := loadCSV(data)
		return samples, env, err
	}
	return nil, env, fmt.Errorf("%s: unrecognised snapshot format (want benchjson JSON, httpperf -json, or httpperf -csv)", path)
}

func loadJSON(data []byte, path string) ([]stats.Sample, snapshotEnv, error) {
	var probe struct {
		Go         string `json:"go"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		CPU        string `json:"cpu"`
		Benchmarks []struct {
			Name    string             `json:"name"`
			NsPerOp float64            `json:"ns_per_op"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
		Units map[string]string `json:"units"`
		Runs  []map[string]any  `json:"runs"`
	}
	env := snapshotEnv{}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, env, fmt.Errorf("%s: %w", path, err)
	}
	env = snapshotEnv{Go: probe.Go, GOOS: probe.GOOS, GOARCH: probe.GOARCH,
		GOMAXPROCS: probe.GOMAXPROCS, CPU: probe.CPU}
	switch {
	case probe.Benchmarks != nil:
		var out []stats.Sample
		for _, b := range probe.Benchmarks {
			cell := "bench:" + b.Name
			out = append(out, stats.Sample{
				Cell: cell, Metric: "ns_per_op", Unit: probe.Units["ns_per_op"],
				Values: []float64{b.NsPerOp},
			})
			for _, name := range sortedKeys(b.Metrics) {
				out = append(out, stats.Sample{
					Cell: cell, Metric: name, Unit: probe.Units[name],
					Values: []float64{b.Metrics[name]},
				})
			}
		}
		return out, env, nil
	case probe.Runs != nil:
		samples, err := samplesFromRuns(probe.Runs)
		return samples, env, err
	}
	return nil, env, fmt.Errorf("%s: JSON has neither \"benchmarks\" nor \"runs\"", path)
}

// samplesFromRuns groups per-run metric records by experiment/scenario
// cell and collects each numeric field's values across the cell's runs.
// The nested "dist" map (latency quantiles) is flattened into its keys.
func samplesFromRuns(runs []map[string]any) ([]stats.Sample, error) {
	type key struct{ cell, metric string }
	values := map[key][]float64{}
	order := []key{}
	add := func(k key, v float64) {
		if _, seen := values[k]; !seen {
			order = append(order, k)
		}
		values[k] = append(values[k], v)
	}
	for _, run := range runs {
		exp, _ := run["experiment"].(string)
		scenario, _ := run["scenario"].(string)
		cell := exp + "/" + scenario
		for _, name := range sortedKeys(run) {
			switch v := run[name].(type) {
			case float64:
				add(key{cell, name}, v)
			case map[string]any:
				if name != "dist" {
					continue
				}
				for _, dk := range sortedKeys(v) {
					if dv, ok := v[dk].(float64); ok {
						add(key{cell, dk}, dv)
					}
				}
			}
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no numeric per-run metrics found")
	}
	out := make([]stats.Sample, 0, len(order))
	for _, k := range order {
		out = append(out, stats.Sample{
			Cell: k.cell, Metric: k.metric, Unit: metricUnit(k.metric),
			Values: values[k],
		})
	}
	return out, nil
}

func loadCSV(data []byte) ([]stats.Sample, error) {
	rows, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("CSV has no data rows")
	}
	header := rows[0]
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	type key struct{ cell, metric string }
	values := map[key][]float64{}
	order := []key{}
	for _, row := range rows[1:] {
		cell := row[col["experiment"]] + "/" + row[col["scenario"]]
		for i, field := range row {
			name := header[i]
			if name == "experiment" || name == "scenario" || field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				continue
			}
			k := key{cell, name}
			if _, seen := values[k]; !seen {
				order = append(order, k)
			}
			values[k] = append(values[k], v)
		}
	}
	out := make([]stats.Sample, 0, len(order))
	for _, k := range order {
		out = append(out, stats.Sample{
			Cell: k.cell, Metric: k.metric, Unit: metricUnit(k.metric),
			Values: values[k],
		})
	}
	return out, nil
}

// metricUnit derives a unit label from the repo's metric-naming
// conventions; unknown names get no unit.
func metricUnit(metric string) string {
	switch {
	case strings.HasSuffix(metric, "_seconds") || strings.HasSuffix(metric, "_sec"):
		return "seconds"
	case strings.HasSuffix(metric, "_bytes"):
		return "bytes"
	case strings.HasPrefix(metric, "packets") || strings.HasSuffix(metric, "_pa"):
		return "packets"
	case strings.Contains(metric, "_ms_"):
		return "ms"
	case strings.HasSuffix(metric, "_pct") || strings.HasSuffix(metric, "_ratio"):
		return "ratio"
	case metric == "ns_per_op":
		return "ns/op"
	}
	return ""
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
