// Command perfdiff compares two performance snapshots and flags
// statistically significant regressions, so a benchmark or experiment
// run can gate CI without tripping on seed noise.
//
// A difference only counts as a regression when BOTH hold:
//
//   - the relative delta exceeds -threshold (default 5%), and
//   - the Student-t 95% confidence intervals of the two populations do
//     not overlap (single-value snapshots have zero-width intervals, so
//     the threshold alone decides).
//
// Inputs may be benchjson snapshots (BENCH_*.json), httpperf -json
// output, or httpperf -csv metrics files; formats are detected by
// shape and may be mixed only old-vs-new of the same kind (cells pair
// by name).
//
// Usage:
//
//	perfdiff old.json new.json            # table of significant deltas
//	perfdiff -all old.json new.json       # every compared delta
//	perfdiff -threshold 10 old new        # require a 10% delta
//	perfdiff -annotate old new            # add GitHub ::warning:: lines
//	perfdiff -only 'events_per_sec' a b   # gate only matching metrics
//
// Exit status: 0 when no significant regression, 1 when at least one,
// 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"

	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", stats.DefaultThresholdPct, "minimum |delta| percent for significance")
	all := fs.Bool("all", false, "print every compared delta, not only significant ones")
	annotate := fs.Bool("annotate", false, "emit GitHub Actions ::warning:: annotations for regressions")
	only := fs.String("only", "", "compare only metrics matching this regexp (anchored match anywhere)")
	verbose := fs.Bool("v", false, "print a one-line per-metric summary (cells, mean delta, worst delta) even when nothing regresses")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: perfdiff [-threshold pct] [-all] [-v] [-annotate] [-only regexp] old new")
		return 2
	}
	var onlyRE *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintln(stderr, "perfdiff: bad -only pattern:", err)
			return 2
		}
		onlyRE = re
	}
	oldS, oldEnv, err := loadSamples(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "perfdiff:", err)
		return 2
	}
	newS, newEnv, err := loadSamples(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "perfdiff:", err)
		return 2
	}
	// Snapshots from different machines or toolchains still compare, but
	// their absolute deltas may reflect the environment, not the code —
	// say so. Fields either snapshot lacks (pre-stamp baselines) are
	// skipped, so old baselines never warn spuriously.
	for _, m := range oldEnv.mismatches(newEnv) {
		fmt.Fprintf(stderr, "perfdiff: warning: environment mismatch: %s — deltas may reflect the machine, not the code\n", m)
	}
	if onlyRE != nil {
		oldS = filterSamples(oldS, onlyRE)
		newS = filterSamples(newS, onlyRE)
	}
	deltas := stats.Compare(oldS, newS, stats.Options{ThresholdPct: *threshold})
	if len(deltas) == 0 {
		fmt.Fprintln(stderr, "perfdiff: no comparable (cell, metric) pairs between the snapshots")
		return 2
	}

	regressions, improvements := 0, 0
	for _, d := range deltas {
		switch {
		case d.Regression:
			regressions++
		case d.Improvement:
			improvements++
		}
		if !d.Significant && !*all {
			continue
		}
		fmt.Fprintln(stdout, formatDelta(d))
		if *annotate && d.Regression {
			fmt.Fprintf(stdout, "::warning title=perfdiff regression::%s %s %s\n",
				d.Cell, d.Metric, formatPct(d.DeltaPct))
		}
	}
	if *verbose {
		printMetricSummary(stdout, deltas)
	}
	fmt.Fprintf(stdout, "perfdiff: %d compared, %d regressions, %d improvements (threshold %.1f%%, 95%% CI)\n",
		len(deltas), regressions, improvements, *threshold)
	if regressions > 0 {
		return 1
	}
	return 0
}

// printMetricSummary condenses the comparison to one line per metric —
// how many cells carried it, the mean delta, and the largest-magnitude
// delta with its cell — so a clean run still shows where each metric
// moved without dumping every (cell, metric) pair.
func printMetricSummary(w io.Writer, deltas []stats.Delta) {
	type agg struct {
		n         int
		sum       float64
		worst     float64
		worstCell string
		unit      string
	}
	byMetric := map[string]*agg{}
	var order []string
	for _, d := range deltas {
		a := byMetric[d.Metric]
		if a == nil {
			a = &agg{}
			byMetric[d.Metric] = a
			order = append(order, d.Metric)
		}
		a.n++
		pct := d.DeltaPct
		if math.IsInf(pct, 0) {
			pct = math.Copysign(100, pct) // cap for the mean; worst keeps ±inf
		}
		a.sum += pct
		if math.Abs(d.DeltaPct) >= math.Abs(a.worst) {
			a.worst = d.DeltaPct
			a.worstCell = d.Cell
		}
		a.unit = d.Unit
	}
	sort.Strings(order)
	for _, m := range order {
		a := byMetric[m]
		line := fmt.Sprintf("metric %-28s %3d cells  mean %s  worst %s (%s)",
			m, a.n, formatPct(a.sum/float64(a.n)), formatPct(a.worst), a.worstCell)
		if a.unit != "" {
			line += " [" + a.unit + "]"
		}
		fmt.Fprintln(w, line)
	}
}

// filterSamples keeps the samples whose metric matches re, so a CI gate
// can hard-fail on a chosen metric family while the rest stays advisory.
func filterSamples(samples []stats.Sample, re *regexp.Regexp) []stats.Sample {
	out := samples[:0]
	for _, s := range samples {
		if re.MatchString(s.Metric) {
			out = append(out, s)
		}
	}
	return out
}

// formatDelta renders one comparison line:
//
//	REGRESS bench:Table4JigsawLAN pipeline_first_sec 0.486 -> 0.612 (+25.9%) [seconds]
func formatDelta(d stats.Delta) string {
	tag := "  ok   "
	switch {
	case d.Regression:
		tag = "REGRESS"
	case d.Improvement:
		tag = "improve"
	}
	line := fmt.Sprintf("%s %s %s %s -> %s (%s)",
		tag, d.Cell, d.Metric, formatMean(d.Old), formatMean(d.New), formatPct(d.DeltaPct))
	if d.Unit != "" {
		line += " [" + d.Unit + "]"
	}
	return line
}

func formatMean(s stats.Summary) string {
	if s.CI95 > 0 {
		return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI95)
	}
	return fmt.Sprintf("%.4g", s.Mean)
}

func formatPct(pct float64) string {
	if math.IsInf(pct, 1) {
		return "+inf%"
	}
	if math.IsInf(pct, -1) {
		return "-inf%"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
