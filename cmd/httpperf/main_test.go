package main

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed smoke-job goldens")

// goldenTable renders one registered experiment exactly the way the CI
// smoke jobs invoke it (`httpperf -table NAME -runs 1 -seeds 1
// -parallel 4`) and diffs the bytes against the committed golden.
func goldenTable(t *testing.T, name, path string) {
	t.Helper()
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	s := &exp.Session{Runs: 1, Seeds: 1, Parallel: 4, Site: site}
	e, ok := exp.Lookup(name)
	if !ok {
		t.Fatalf("%s experiment not registered", name)
	}
	data, err := e.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, s, data); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n') // run() prints a blank line after each table

	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s table drifted from committed golden:\n--- got ---\n%s\n--- want ---\n%s", name, buf.Bytes(), want)
	}
}

// TestFaultMatrixGolden pins the exact bytes the CI fault-matrix smoke
// job diffs: `httpperf -faults -runs 1 -seeds 1 -parallel 4`. If the
// fault table legitimately changes, regenerate with `go test ./cmd/httpperf
// -run TestFaultMatrixGolden -update`.
func TestFaultMatrixGolden(t *testing.T) {
	goldenTable(t, "faults", "testdata/faults_golden.txt")
}

// TestMuxGolden pins the exact bytes the CI mux smoke job diffs:
// `httpperf -table mux -runs 1 -seeds 1 -parallel 4`. Regenerate with
// `go test ./cmd/httpperf -run TestMuxGolden -update` after legitimate
// changes to the multiplexed-protocol experiment.
func TestMuxGolden(t *testing.T) {
	goldenTable(t, "mux", "testdata/mux_golden.txt")
}

// TestMuxFaultsGolden pins the exact bytes the CI fault-matrix smoke
// job diffs for the framed-protocol recovery sweep: `httpperf -table
// mux-faults -runs 1 -seeds 1 -parallel 4`. Regenerate with `go test
// ./cmd/httpperf -run TestMuxFaultsGolden -update`.
func TestMuxFaultsGolden(t *testing.T) {
	goldenTable(t, "mux-faults", "testdata/muxfaults_golden.txt")
}
