package main

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed fault-matrix golden")

// TestFaultMatrixGolden pins the exact bytes the CI fault-matrix smoke
// job diffs: `httpperf -faults -runs 1 -seeds 1 -parallel 4`. If the
// fault table legitimately changes, regenerate with `go test ./cmd/httpperf
// -run TestFaultMatrixGolden -update`.
func TestFaultMatrixGolden(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	s := &exp.Session{Runs: 1, Seeds: 1, Parallel: 4, Site: site}
	e, ok := exp.Lookup("faults")
	if !ok {
		t.Fatal("faults experiment not registered")
	}
	data, err := e.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, s, data); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n') // run() prints a blank line after each table

	const path = "testdata/faults_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fault matrix drifted from committed golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestMuxGolden pins the exact bytes the CI mux smoke job diffs:
// `httpperf -table mux -runs 1 -seeds 1 -parallel 4`. Regenerate with
// `go test ./cmd/httpperf -run TestMuxGolden -update` after legitimate
// changes to the multiplexed-protocol experiment.
func TestMuxGolden(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	s := &exp.Session{Runs: 1, Seeds: 1, Parallel: 4, Site: site}
	e, ok := exp.Lookup("mux")
	if !ok {
		t.Fatal("mux experiment not registered")
	}
	data, err := e.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, s, data); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n') // run() prints a blank line after each table

	const path = "testdata/mux_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("mux table drifted from committed golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
