// Command httpperf regenerates the measurements of "Network Performance
// Effects of HTTP/1.1, CSS1, and PNG" (SIGCOMM '97) on the simulated
// testbed. The experiments come from the registry populated by
// internal/experiments; independent simulation runs fan out across a
// worker pool whose aggregation is deterministic, so the tables are
// byte-identical at any -parallel level.
//
// Usage:
//
//	httpperf                 # everything
//	httpperf -table 4        # one of Tables 3-11
//	httpperf -table modem    # the §8.2.1 modem-compression experiment
//	httpperf -table tagcase  # tag case vs deflate ratio
//	httpperf -table css      # Figure 1 + whole-page CSS replacement
//	httpperf -table png      # GIF->PNG / GIF->MNG conversion
//	httpperf -table nagle    # Nagle interaction ablation
//	httpperf -table reset    # server early-close scenario
//	httpperf -table flush    # buffer/flush-timer ablation
//	httpperf -table range    # range-probe revalidation after a site revision
//	httpperf -table headers  # request-redundancy (compact encoding) estimate
//	httpperf -table cwnd     # slow-start initial window ablation
//	httpperf -table proxy    # shared caching proxy tier (cold/warm/stale)
//	httpperf -table faults   # fault injection and recovery matrix
//	httpperf -faults         # shortcut for -table faults
//	httpperf -table mux      # multiplexed modes: mux, server push, burst
//	httpperf -table mux-faults  # framed-protocol fault injection and recovery
//	httpperf -table sweep    # per-run structured metrics sweep
//	httpperf -list           # registered experiments + scenario vocabulary
//	httpperf -list-envs      # Table 1
//	httpperf -runs 5         # averaging runs per cell (default 5)
//	httpperf -seeds 2        # independent seed families per cell (default 1)
//	httpperf -parallel 8     # worker goroutines (default NumCPU)
//	httpperf -json           # machine-readable output (tables + per-run metrics)
//	httpperf -csv            # per-run metrics as CSV
//
// Statistical observability:
//
//	httpperf -experiment variance -reps 8   # seed-variance experiment: mean ± 95% CI
//	                                        # and latency quantiles per cell
//	httpperf -table 4 -stats -reps 4        # any experiment + per-cell ±CI summary table
//	httpperf -hist                          # run -scenario once, print per-request
//	                                        # latency histograms (queue/TTFB/total)
//
// -experiment is an alias for -table; -reps sets the seed-family count
// (like -seeds) so every cell becomes a population rather than a point.
//
// Observability (single-scenario mode; see -scenario for the cell):
//
//	httpperf -pcap run.pcap        # packet capture for tcpdump/Wireshark
//	httpperf -timeline run.json    # Perfetto / Chrome trace-event JSON
//	httpperf -waterfall            # devtools-style request waterfall table
//	httpperf -blame                # waterfall with per-request delay attribution
//	                               # phase columns, plus the run's totals
//	httpperf -critical-path        # page-load gating chain and its blame
//	httpperf -topology proxy:WAN   # interpose a shared caching proxy
//	httpperf -fault early-close    # inject a scripted fault profile
//
// Live telemetry (any mode; all off by default and non-perturbing —
// output stays byte-identical with these on):
//
//	httpperf -progress                      # live cells/runs/rate/ETA line on stderr
//	httpperf -telemetry out.jsonl           # JSON-lines stream: meta, periodic samples
//	                                        # (registry + memory/GC), progress, flight records
//	httpperf -telemetry-interval 250ms      # sampler period (default 500ms)
//	httpperf -flight dumps/                 # flight recorder: retain the last -flight-events
//	                                        # bus events per run; dump Perfetto JSON + pcap
//	                                        # on panic, recovery-watchdog fire, or cell error
//	httpperf -validate-telemetry out.jsonl  # check a stream against the telemetry/1 schema
//
// Profiling:
//
//	httpperf -cpuprofile cpu.pb.gz          # CPU profile of the whole invocation
//	httpperf -memprofile mem.pb.gz          # heap profile at exit
//	httpperf -mutexprofile mutex.pb.gz      # mutex-contention profile at exit
//	httpperf -profile-slowest slow.pb.gz    # after a sweep, re-run its slowest cell
//	                                        # alone under the CPU profiler
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	_ "repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the whole invocation so deferred telemetry and
// profile finalizers run before the process exits.
func realMain() int {
	table := flag.String("table", "all", "which table to regenerate (3..11, modem, tagcase, css, png, nagle, reset, flush, range, headers, cwnd, proxy, faults, variance, mux, mux-faults, sweep, all)")
	experiment := flag.String("experiment", "", "alias for -table")
	faultsOnly := flag.Bool("faults", false, "shortcut for -table faults")
	runs := flag.Int("runs", core.DefaultRuns, "averaging runs per cell")
	seeds := flag.Int("seeds", 1, "independent seed families per cell (multiplies -runs)")
	reps := flag.Int("reps", 0, "replications per cell: sets the seed-family count (overrides -seeds)")
	statsOn := flag.Bool("stats", false, "collect per-request latency distributions and append a per-cell mean ±95% CI summary table")
	hist := flag.Bool("hist", false, "run -scenario once and print its per-request latency histograms (queue/TTFB/total)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulation runs")
	list := flag.Bool("list", false, "list registered experiments and the scenario vocabulary, then exit")
	listEnvs := flag.Bool("list-envs", false, "print Table 1 (network environments) and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON (tables plus per-run metrics) instead of text tables")
	asCSV := flag.Bool("csv", false, "emit per-run metrics as CSV instead of text tables")
	scenario := flag.String("scenario", "apache/pipelined/PPP/first", "server/client/env/workload[/topology][/fault] cell for the observability flags")
	topology := flag.String("topology", "direct", "topology for the observability run: direct, or proxy:ENV[:warm|:stale]")
	fault := flag.String("fault", "", "fault profile for the observability run ("+strings.Join(faults.Names(), ", ")+")")
	seed := flag.Uint64("seed", 1, "seed for the observability single-scenario run")
	pcap := flag.String("pcap", "", "run -scenario once and write its packet capture to this pcap file")
	timeline := flag.String("timeline", "", "run -scenario once and write its event timeline to this Perfetto JSON file")
	waterfall := flag.Bool("waterfall", false, "run -scenario once and print its request waterfall table")
	blame := flag.Bool("blame", false, "run -scenario once and print its waterfall with per-request delay attribution columns, plus the run totals")
	criticalPath := flag.Bool("critical-path", false, "run -scenario once and print its page-load critical path (gating chain + blame)")
	progress := flag.Bool("progress", false, "report live sweep progress (cells, runs, rate, ETA) on stderr")
	telemetryOut := flag.String("telemetry", "", "stream live telemetry (samples, progress, flight records) to this JSON-lines file")
	telemetryInterval := flag.Duration("telemetry-interval", 500*time.Millisecond, "sampler period for -telemetry")
	flightDir := flag.String("flight", "", "arm the flight recorder: dump the last -flight-events bus events into this directory when a run panics, the recovery watchdog fires, or a cell errors")
	flightEvents := flag.Int("flight-events", telemetry.DefaultFlightEvents, "events the flight recorder retains per run")
	validateTelemetry := flag.String("validate-telemetry", "", "validate a -telemetry JSON-lines file against the telemetry/1 schema and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the invocation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile at exit to this file")
	profileSlowest := flag.String("profile-slowest", "", "after the sweep, re-run its slowest cell alone and write that CPU profile to this file")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "httpperf:", err)
		return 1
	}

	if *list {
		printList(os.Stdout)
		return 0
	}
	if *listEnvs {
		report.Environments(os.Stdout)
		return 0
	}
	if *validateTelemetry != "" {
		if err := validateStreamFile(*validateTelemetry, os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	// Profiling. The mutex fraction must be set before the work runs;
	// the heap and mutex profiles are written on the way out.
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	cpuStopped := false
	stopCPU := func() {
		if *cpuprofile != "" && !cpuStopped {
			cpuStopped = true
			pprof.StopCPUProfile()
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer stopCPU()
	}
	defer writeExitProfiles(*memprofile, *mutexprofile)

	// Telemetry stream + sampler.
	var stream *telemetry.Stream
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		stream = telemetry.NewStream(f)
		telemetry.SetStream(stream)
		sampler := telemetry.StartSampler(stream, telemetry.Default(), *telemetryInterval)
		defer func() {
			sampler.Close()
			telemetry.SetStream(nil)
			if err := stream.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "httpperf: telemetry stream:", err)
			}
		}()
	}

	// Flight recorder.
	if *flightDir != "" {
		fl, err := telemetry.NewFlight(*flightDir, *flightEvents)
		if err != nil {
			return fail(err)
		}
		telemetry.SetFlight(fl)
		defer telemetry.SetFlight(nil)
	}

	// Progress reporter: feeds the stream whenever one is open, and
	// stderr only under -progress.
	var reporter *telemetry.Reporter
	if *progress || stream != nil {
		var human io.Writer
		if *progress {
			human = os.Stderr
		}
		reporter = telemetry.NewReporter(telemetry.Default(), stream, human)
		exp.SetProgress(reporter.Observe)
		defer func() {
			exp.SetProgress(nil)
			reporter.Close()
		}()
	}

	if *pcap != "" || *timeline != "" || *waterfall || *hist || *blame || *criticalPath {
		if err := observe(*scenario, *topology, *fault, *seed, *pcap, *timeline, *waterfall, *hist, *blame, *criticalPath); err != nil {
			return fail(err)
		}
		return 0
	}
	if *faultsOnly {
		*table = "faults"
	}
	if *experiment != "" {
		*table = *experiment
	}
	if *reps > 0 {
		*seeds = *reps
	}
	s := &exp.Session{Runs: *runs, Seeds: *seeds, Parallel: *parallel, Stats: *statsOn}
	if *profileSlowest != "" {
		// The recorder lets us recover the exact Scenario of the slowest
		// cell, and the collector supplies its wall-time measurements.
		core.RecordScenarios(true)
		s.Collector = exp.NewCollector()
	}
	if err := run(s, *table, *asJSON, *asCSV, *statsOn, reporter); err != nil {
		return fail(err)
	}
	if *profileSlowest != "" {
		stopCPU() // only one CPU profile can run at a time
		if err := writeSlowestProfile(*profileSlowest, s); err != nil {
			return fail(err)
		}
	}
	return 0
}

// validateStreamFile checks a JSON-lines telemetry file against the
// telemetry/1 schema and prints the per-type record counts.
func validateStreamFile(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	counts, err := telemetry.ValidateStream(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if counts[telemetry.RecordSample] == 0 {
		return fmt.Errorf("%s: no sample records (sampler never fired?)", path)
	}
	fmt.Fprintf(w, "%s: valid %s stream: %d meta, %d sample, %d progress, %d flight\n",
		path, telemetry.SchemaVersion,
		counts[telemetry.RecordMeta], counts[telemetry.RecordSample],
		counts[telemetry.RecordProgress], counts[telemetry.RecordFlight])
	return nil
}

// writeExitProfiles writes the heap and mutex profiles, when requested.
func writeExitProfiles(memprofile, mutexprofile string) {
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err == nil {
			runtime.GC() // up-to-date allocation data
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "httpperf: memprofile:", err)
		}
	}
	if mutexprofile != "" {
		f, err := os.Create(mutexprofile)
		if err == nil {
			err = pprof.Lookup("mutex").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "httpperf: mutexprofile:", err)
		}
	}
}

// writeSlowestProfile finds the sweep's slowest cell by per-run wall
// time (sim_events / events-per-second), re-runs that exact scenario
// alone under the CPU profiler, and writes the profile to path.
func writeSlowestProfile(path string, s *exp.Session) error {
	var slowest exp.Metrics
	var slowestWall float64
	found := false
	for _, rec := range s.Collector.Records() {
		if rec.SimEventsPerSec <= 0 {
			continue
		}
		wall := float64(rec.SimEvents) / rec.SimEventsPerSec
		if !found || wall > slowestWall {
			found, slowest, slowestWall = true, rec, wall
		}
	}
	if !found {
		return fmt.Errorf("profile-slowest: the sweep collected no per-run metrics")
	}
	sc, ok := core.RecordedScenario(slowest.Scenario)
	if !ok {
		return fmt.Errorf("profile-slowest: scenario %q was not recorded", slowest.Scenario)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	_, runErr := core.Run(sc, s.Site, core.WithSeed(slowest.Seed))
	pprof.StopCPUProfile()
	if runErr != nil {
		return fmt.Errorf("profile-slowest: re-running %s: %w", slowest.Scenario, runErr)
	}
	fmt.Fprintf(os.Stderr, "httpperf: wrote %s (slowest cell %s seed %d, ~%.0fms wall)\n",
		path, slowest.Scenario, slowest.Seed, slowestWall*1000)
	return nil
}

// printList enumerates the registered experiments and the scenario
// vocabulary the -scenario and -topology flags accept.
func printList(w io.Writer) {
	fmt.Fprintln(w, "Experiments (-table):")
	for _, name := range exp.AllNames() {
		e, _ := exp.Lookup(name)
		fmt.Fprintf(w, "  %-8s %s\n", name, e.Title)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario spec (-scenario): server/client/env/workload[/topology][/fault]")
	fmt.Fprintln(w, "  server:   jigsaw, apache")
	fmt.Fprintln(w, "  client:   http10, serial, pipelined, deflate, netscape, msie, mux, mux-push, burst")
	fmt.Fprintln(w, "  env:      LAN, WAN, PPP")
	fmt.Fprintln(w, "  workload: first, reval")
	fmt.Fprintln(w, "  topology: direct, proxy:ENV[:warm|:stale]   (also the -topology flag)")
	fmt.Fprintln(w, "            e.g. proxy:WAN:warm = shared cache at the ISP, primed and fresh")
	fmt.Fprintf(w, "  fault:    %s   (also the -fault flag)\n", strings.Join(faults.Names(), ", "))
	fmt.Fprintln(w, "            e.g. early-close = server drops the connection after 5 responses")
}

// observe runs one scenario with full observability and writes the
// requested exports.
func observe(spec, topology, fault string, seed uint64, pcap, timeline string, waterfall, hist, blame, criticalPath bool) error {
	sc, err := core.ParseScenario(spec)
	if err != nil {
		return err
	}
	if topology != "" && topology != "direct" {
		if sc.Proxy, err = core.ParseTopology(topology); err != nil {
			return err
		}
	}
	if fault != "" {
		if sc.Fault, err = faults.Parse(fault); err != nil {
			return err
		}
	}
	sc.Seed = seed
	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithCapture(), core.WithTimeline()}
	if hist {
		opts = append(opts, core.WithStats())
	}
	if blame || criticalPath {
		opts = append(opts, core.WithBlame())
	}
	res, err := core.Run(sc, site, opts...)
	if err != nil {
		return err
	}
	if pcap != "" {
		f, err := os.Create(pcap)
		if err != nil {
			return err
		}
		if err := res.Capture.WritePcap(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "httpperf: wrote %s (%d packets)\n", pcap, res.Stats.Packets)
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		// With an attribution run, the export carries the critical path
		// as a highlighted track.
		if err := res.Timeline.WritePerfettoPath(f, res.Blame.PerfettoPath()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "httpperf: wrote %s (%d events, %d spans)\n",
			timeline, res.Timeline.Len(), len(res.Timeline.Spans()))
	}
	if waterfall || blame {
		report.WriteWaterfall(os.Stdout, res.Timeline, res.Blame)
	}
	if blame {
		report.BlameSummary(os.Stdout, res.Blame)
	}
	if criticalPath {
		if blame {
			fmt.Println()
		}
		report.CriticalPath(os.Stdout, res.Blame)
	}
	if hist {
		fmt.Printf("%s  (%d requests)\n\n", sc, res.Latency.Count())
		res.Latency.Fprint(os.Stdout)
	}
	return nil
}

func run(s *exp.Session, table string, asJSON, asCSV, statsOn bool, reporter *telemetry.Reporter) error {
	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	s.Site = site

	names := exp.Names()
	if table != "all" {
		if _, ok := exp.Lookup(table); !ok {
			return fmt.Errorf("unknown table %q (known: %v)", table, exp.AllNames())
		}
		names = []string{table}
	}
	expDone := func(name string) {
		if reporter != nil {
			reporter.ExperimentDone(name)
		}
	}
	if reporter != nil {
		reporter.SetTotalExperiments(len(names))
	}

	if asJSON || asCSV {
		if s.Collector == nil {
			s.Collector = exp.NewCollector()
		}
		results := make(map[string]any, len(names)+1)
		for _, name := range names {
			data, err := s.Generate(name)
			if err != nil {
				return fmt.Errorf("table %s: %w", name, err)
			}
			if data != nil {
				results[name] = data
			}
			expDone(name)
		}
		if asCSV {
			return s.Collector.WriteCSV(os.Stdout)
		}
		results["runs"] = s.Collector.Records()
		if statsOn {
			results["cells"] = s.Collector.Cells()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}

	if statsOn && s.Collector == nil {
		s.Collector = exp.NewCollector()
	}
	for _, name := range names {
		e, _ := exp.Lookup(name)
		data, err := e.Generate(s)
		if err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		if err := e.Render(os.Stdout, s, data); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		fmt.Println()
		expDone(name)
	}
	if statsOn {
		report.Cells(os.Stdout, s.Collector.Cells())
		fmt.Println()
	}
	return nil
}
