// Command httpperf regenerates the measurements of "Network Performance
// Effects of HTTP/1.1, CSS1, and PNG" (SIGCOMM '97) on the simulated
// testbed.
//
// Usage:
//
//	httpperf                 # everything
//	httpperf -table 4        # one of Tables 3-11
//	httpperf -table modem    # the §8.2.1 modem-compression experiment
//	httpperf -table tagcase  # tag case vs deflate ratio
//	httpperf -table css      # Figure 1 + whole-page CSS replacement
//	httpperf -table png      # GIF->PNG / GIF->MNG conversion
//	httpperf -table nagle    # Nagle interaction ablation
//	httpperf -table reset    # server early-close scenario
//	httpperf -table flush    # buffer/flush-timer ablation
//	httpperf -table range    # range-probe revalidation after a site revision
//	httpperf -table headers  # request-redundancy (compact encoding) estimate
//	httpperf -table cwnd     # slow-start initial window ablation
//	httpperf -list-envs      # Table 1
//	httpperf -runs 5         # averaging runs per cell (default 5)
//	httpperf -json           # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/httpserver"
	"repro/internal/report"
	"repro/internal/webgen"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate (3..11, modem, tagcase, css, png, nagle, reset, flush, range, headers, cwnd, all)")
	runs := flag.Int("runs", core.DefaultRuns, "averaging runs per cell")
	listEnvs := flag.Bool("list-envs", false, "print Table 1 (network environments) and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text tables")
	flag.Parse()

	if *listEnvs {
		report.Environments(os.Stdout)
		return
	}
	if err := run(*table, *runs, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "httpperf:", err)
		os.Exit(1)
	}
}

// modemPair bundles both server profiles' modem experiments.
type modemPair struct {
	Jigsaw, Apache []core.ModemRow
}

// step is one regenerable experiment: generate produces the data, render
// prints it as a text table.
type step struct {
	generate func(site *webgen.Site, runs int) (any, error)
	render   func(site *webgen.Site, data any)
}

func steps() (map[string]step, []string) {
	out := os.Stdout
	mainTable := func(n int) step {
		return step{
			generate: func(site *webgen.Site, runs int) (any, error) { return core.MainTable(n, site, runs) },
			render:   func(_ *webgen.Site, d any) { report.MainTable(out, d.(core.Table)) },
		}
	}
	browserTable := func(n int) step {
		return step{
			generate: func(site *webgen.Site, runs int) (any, error) { return core.BrowserTable(n, site, runs) },
			render:   func(_ *webgen.Site, d any) { report.MainTable(out, d.(core.Table)) },
		}
	}
	m := map[string]step{
		"1": {
			generate: func(*webgen.Site, int) (any, error) { return nil, nil },
			render:   func(*webgen.Site, any) { report.Environments(out) },
		},
		"3": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.Table3(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Table3(out, d.([]core.Table3Row)) },
		},
		"4": mainTable(4), "5": mainTable(5), "6": mainTable(6),
		"7": mainTable(7), "8": mainTable(8), "9": mainTable(9),
		"10": browserTable(10), "11": browserTable(11),
		"modem": {
			generate: func(site *webgen.Site, runs int) (any, error) {
				j, err := core.ModemTable(site, httpserver.ProfileJigsaw, runs)
				if err != nil {
					return nil, err
				}
				a, err := core.ModemTable(site, httpserver.ProfileApache, runs)
				if err != nil {
					return nil, err
				}
				return modemPair{Jigsaw: j, Apache: a}, nil
			},
			render: func(_ *webgen.Site, d any) {
				v := d.(modemPair)
				report.Modem(out, v.Jigsaw, "Jigsaw")
				fmt.Fprintln(out)
				report.Modem(out, v.Apache, "Apache")
			},
		},
		"tagcase": {
			generate: func(*webgen.Site, int) (any, error) { return core.TagCaseTable() },
			render:   func(_ *webgen.Site, d any) { report.TagCase(out, d.([]core.TagCaseRow)) },
		},
		"css": {
			generate: func(site *webgen.Site, _ int) (any, error) { return site.CSSReplacements(), nil },
			render:   func(site *webgen.Site, _ any) { report.CSS(out, site) },
		},
		"png": {
			generate: func(site *webgen.Site, _ int) (any, error) { return site.ConvertImages() },
			render: func(site *webgen.Site, _ any) {
				if err := report.PNG(out, site); err != nil {
					fmt.Fprintln(os.Stderr, "httpperf:", err)
				}
			},
		},
		"nagle": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.NagleTable(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Nagle(out, d.([]core.NagleRow)) },
		},
		"reset": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.ResetTable(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Reset(out, d.([]core.ResetRow)) },
		},
		"flush": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.FlushAblation(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Flush(out, d.([]core.FlushRow)) },
		},
		"range": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.RangeTable(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Range(out, d.([]core.RangeRow)) },
		},
		"headers": {
			generate: func(site *webgen.Site, _ int) (any, error) { return core.HeaderRedundancy(site) },
			render:   func(_ *webgen.Site, d any) { report.HeaderRedundancy(out, d.([]core.HeaderRedundancyRow)) },
		},
		"cwnd": {
			generate: func(site *webgen.Site, runs int) (any, error) { return core.CwndTable(site, runs) },
			render:   func(_ *webgen.Site, d any) { report.Cwnd(out, d.([]core.CwndRow)) },
		},
	}
	order := []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "11",
		"modem", "tagcase", "css", "png", "nagle", "reset", "flush",
		"range", "headers", "cwnd"}
	return m, order
}

func run(table string, runs int, asJSON bool) error {
	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	all, order := steps()

	names := order
	if table != "all" {
		if _, ok := all[table]; !ok {
			return fmt.Errorf("unknown table %q", table)
		}
		names = []string{table}
	}

	if asJSON {
		results := make(map[string]any, len(names))
		for _, name := range names {
			data, err := all[name].generate(site, runs)
			if err != nil {
				return fmt.Errorf("table %s: %w", name, err)
			}
			if data != nil {
				results[name] = data
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}

	for _, name := range names {
		data, err := all[name].generate(site, runs)
		if err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		all[name].render(site, data)
		fmt.Println()
	}
	return nil
}
