// Command httpperf regenerates the measurements of "Network Performance
// Effects of HTTP/1.1, CSS1, and PNG" (SIGCOMM '97) on the simulated
// testbed. The experiments come from the registry populated by
// internal/experiments; independent simulation runs fan out across a
// worker pool whose aggregation is deterministic, so the tables are
// byte-identical at any -parallel level.
//
// Usage:
//
//	httpperf                 # everything
//	httpperf -table 4        # one of Tables 3-11
//	httpperf -table modem    # the §8.2.1 modem-compression experiment
//	httpperf -table tagcase  # tag case vs deflate ratio
//	httpperf -table css      # Figure 1 + whole-page CSS replacement
//	httpperf -table png      # GIF->PNG / GIF->MNG conversion
//	httpperf -table nagle    # Nagle interaction ablation
//	httpperf -table reset    # server early-close scenario
//	httpperf -table flush    # buffer/flush-timer ablation
//	httpperf -table range    # range-probe revalidation after a site revision
//	httpperf -table headers  # request-redundancy (compact encoding) estimate
//	httpperf -table cwnd     # slow-start initial window ablation
//	httpperf -table proxy    # shared caching proxy tier (cold/warm/stale)
//	httpperf -table faults   # fault injection and recovery matrix
//	httpperf -faults         # shortcut for -table faults
//	httpperf -table sweep    # per-run structured metrics sweep
//	httpperf -list           # registered experiments + scenario vocabulary
//	httpperf -list-envs      # Table 1
//	httpperf -runs 5         # averaging runs per cell (default 5)
//	httpperf -seeds 2        # independent seed families per cell (default 1)
//	httpperf -parallel 8     # worker goroutines (default NumCPU)
//	httpperf -json           # machine-readable output (tables + per-run metrics)
//	httpperf -csv            # per-run metrics as CSV
//
// Statistical observability:
//
//	httpperf -experiment variance -reps 8   # seed-variance experiment: mean ± 95% CI
//	                                        # and latency quantiles per cell
//	httpperf -table 4 -stats -reps 4        # any experiment + per-cell ±CI summary table
//	httpperf -hist                          # run -scenario once, print per-request
//	                                        # latency histograms (queue/TTFB/total)
//
// -experiment is an alias for -table; -reps sets the seed-family count
// (like -seeds) so every cell becomes a population rather than a point.
//
// Observability (single-scenario mode; see -scenario for the cell):
//
//	httpperf -pcap run.pcap        # packet capture for tcpdump/Wireshark
//	httpperf -timeline run.json    # Perfetto / Chrome trace-event JSON
//	httpperf -waterfall            # devtools-style request waterfall table
//	httpperf -topology proxy:WAN   # interpose a shared caching proxy
//	httpperf -fault early-close    # inject a scripted fault profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	_ "repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate (3..11, modem, tagcase, css, png, nagle, reset, flush, range, headers, cwnd, proxy, faults, variance, sweep, all)")
	experiment := flag.String("experiment", "", "alias for -table")
	faultsOnly := flag.Bool("faults", false, "shortcut for -table faults")
	runs := flag.Int("runs", core.DefaultRuns, "averaging runs per cell")
	seeds := flag.Int("seeds", 1, "independent seed families per cell (multiplies -runs)")
	reps := flag.Int("reps", 0, "replications per cell: sets the seed-family count (overrides -seeds)")
	statsOn := flag.Bool("stats", false, "collect per-request latency distributions and append a per-cell mean ±95% CI summary table")
	hist := flag.Bool("hist", false, "run -scenario once and print its per-request latency histograms (queue/TTFB/total)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulation runs")
	list := flag.Bool("list", false, "list registered experiments and the scenario vocabulary, then exit")
	listEnvs := flag.Bool("list-envs", false, "print Table 1 (network environments) and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON (tables plus per-run metrics) instead of text tables")
	asCSV := flag.Bool("csv", false, "emit per-run metrics as CSV instead of text tables")
	scenario := flag.String("scenario", "apache/pipelined/PPP/first", "server/client/env/workload[/topology][/fault] cell for the observability flags")
	topology := flag.String("topology", "direct", "topology for the observability run: direct, or proxy:ENV[:warm|:stale]")
	fault := flag.String("fault", "", "fault profile for the observability run ("+strings.Join(faults.Names(), ", ")+")")
	seed := flag.Uint64("seed", 1, "seed for the observability single-scenario run")
	pcap := flag.String("pcap", "", "run -scenario once and write its packet capture to this pcap file")
	timeline := flag.String("timeline", "", "run -scenario once and write its event timeline to this Perfetto JSON file")
	waterfall := flag.Bool("waterfall", false, "run -scenario once and print its request waterfall table")
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}
	if *listEnvs {
		report.Environments(os.Stdout)
		return
	}
	if *pcap != "" || *timeline != "" || *waterfall || *hist {
		if err := observe(*scenario, *topology, *fault, *seed, *pcap, *timeline, *waterfall, *hist); err != nil {
			fmt.Fprintln(os.Stderr, "httpperf:", err)
			os.Exit(1)
		}
		return
	}
	if *faultsOnly {
		*table = "faults"
	}
	if *experiment != "" {
		*table = *experiment
	}
	if *reps > 0 {
		*seeds = *reps
	}
	s := &exp.Session{Runs: *runs, Seeds: *seeds, Parallel: *parallel, Stats: *statsOn}
	if err := run(s, *table, *asJSON, *asCSV, *statsOn); err != nil {
		fmt.Fprintln(os.Stderr, "httpperf:", err)
		os.Exit(1)
	}
}

// printList enumerates the registered experiments and the scenario
// vocabulary the -scenario and -topology flags accept.
func printList(w io.Writer) {
	fmt.Fprintln(w, "Experiments (-table):")
	for _, name := range exp.AllNames() {
		e, _ := exp.Lookup(name)
		fmt.Fprintf(w, "  %-8s %s\n", name, e.Title)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario spec (-scenario): server/client/env/workload[/topology][/fault]")
	fmt.Fprintln(w, "  server:   jigsaw, apache")
	fmt.Fprintln(w, "  client:   http10, serial, pipelined, deflate, netscape, msie")
	fmt.Fprintln(w, "  env:      LAN, WAN, PPP")
	fmt.Fprintln(w, "  workload: first, reval")
	fmt.Fprintln(w, "  topology: direct, proxy:ENV[:warm|:stale]   (also the -topology flag)")
	fmt.Fprintln(w, "            e.g. proxy:WAN:warm = shared cache at the ISP, primed and fresh")
	fmt.Fprintf(w, "  fault:    %s   (also the -fault flag)\n", strings.Join(faults.Names(), ", "))
	fmt.Fprintln(w, "            e.g. early-close = server drops the connection after 5 responses")
}

// observe runs one scenario with full observability and writes the
// requested exports.
func observe(spec, topology, fault string, seed uint64, pcap, timeline string, waterfall, hist bool) error {
	sc, err := core.ParseScenario(spec)
	if err != nil {
		return err
	}
	if topology != "" && topology != "direct" {
		if sc.Proxy, err = core.ParseTopology(topology); err != nil {
			return err
		}
	}
	if fault != "" {
		if sc.Fault, err = faults.Parse(fault); err != nil {
			return err
		}
	}
	sc.Seed = seed
	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithCapture(), core.WithTimeline()}
	if hist {
		opts = append(opts, core.WithStats())
	}
	res, err := core.Run(sc, site, opts...)
	if err != nil {
		return err
	}
	if pcap != "" {
		f, err := os.Create(pcap)
		if err != nil {
			return err
		}
		if err := res.Capture.WritePcap(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "httpperf: wrote %s (%d packets)\n", pcap, res.Stats.Packets)
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		if err := res.Timeline.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "httpperf: wrote %s (%d events, %d spans)\n",
			timeline, res.Timeline.Len(), len(res.Timeline.Spans()))
	}
	if waterfall {
		report.WriteWaterfall(os.Stdout, res.Timeline)
	}
	if hist {
		fmt.Printf("%s  (%d requests)\n\n", sc, res.Latency.Count())
		res.Latency.Fprint(os.Stdout)
	}
	return nil
}

func run(s *exp.Session, table string, asJSON, asCSV, statsOn bool) error {
	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	s.Site = site

	names := exp.Names()
	if table != "all" {
		if _, ok := exp.Lookup(table); !ok {
			return fmt.Errorf("unknown table %q (known: %v)", table, exp.AllNames())
		}
		names = []string{table}
	}

	if asJSON || asCSV {
		s.Collector = exp.NewCollector()
		results := make(map[string]any, len(names)+1)
		for _, name := range names {
			data, err := s.Generate(name)
			if err != nil {
				return fmt.Errorf("table %s: %w", name, err)
			}
			if data != nil {
				results[name] = data
			}
		}
		if asCSV {
			return s.Collector.WriteCSV(os.Stdout)
		}
		results["runs"] = s.Collector.Records()
		if statsOn {
			results["cells"] = s.Collector.Cells()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}

	if statsOn && s.Collector == nil {
		s.Collector = exp.NewCollector()
	}
	for _, name := range names {
		e, _ := exp.Lookup(name)
		data, err := e.Generate(s)
		if err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		if err := e.Render(os.Stdout, s, data); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		fmt.Println()
	}
	if statsOn {
		report.Cells(os.Stdout, s.Collector.Cells())
		fmt.Println()
	}
	return nil
}
