// Command tracedump runs one scenario and prints its packet trace in a
// tcpdump-like format, plus the run summary — the workflow the authors
// used (tcpdump + tcpshow + xplot) to find implementation problems.
//
// Usage:
//
//	tracedump -server jigsaw -client pipelined -env WAN -workload reval
//	tracedump -client http10 -env LAN -seq client      # time-sequence points
//	tracedump -client serial -env WAN -xplot server    # xplot(1) file
//	tracedump -env PPP -pcap run.pcap                  # Wireshark-ready capture
//	tracedump -env PPP -timeline run.json              # Perfetto trace
//	tracedump -env PPP -waterfall                      # request waterfall table
//	tracedump -env PPP -blame                          # waterfall with delay
//	                                                   # attribution + critical path
//	tracedump -client serial -env PPP -nagle -pcap n.pcap  # §4.1 Nagle stall
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/httpserver"
	"repro/internal/report"
)

func main() {
	server := flag.String("server", "apache", "server profile: jigsaw, apache")
	client := flag.String("client", "pipelined", "client mode: http10, serial, pipelined, deflate, netscape, msie")
	env := flag.String("env", "LAN", "network environment: LAN, WAN, PPP")
	workload := flag.String("workload", "first", "workload: first, reval")
	seed := flag.Uint64("seed", 1, "run seed")
	seq := flag.String("seq", "", "print time-sequence points for this host (client/server) instead of the dump")
	xplot := flag.String("xplot", "", "write an xplot(1) file of this host's send direction instead of the dump")
	pcap := flag.String("pcap", "", "write the packet capture to this file as pcap (tcpdump/Wireshark)")
	timeline := flag.String("timeline", "", "write the full-stack event timeline to this file as Perfetto/Chrome trace JSON")
	waterfall := flag.Bool("waterfall", false, "print the request waterfall table instead of the dump")
	blame := flag.Bool("blame", false, "print the blame-annotated waterfall, attribution totals, and critical path instead of the dump")
	nagle := flag.Bool("nagle", false, "re-enable Nagle on the server (the paper's untuned configuration)")
	flag.Parse()

	if err := run(*server, *client, *env, *workload, *seed, *seq, *xplot, *pcap, *timeline, *waterfall, *blame, *nagle); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(server, client, env, workload string, seed uint64, seq, xplot, pcap, timeline string, waterfall, blame, nagle bool) error {
	sc := core.Scenario{Seed: seed}
	var err error
	if sc.Server, err = core.ParseServerProfile(server); err != nil {
		return err
	}
	if sc.Client, err = core.ParseClientMode(client); err != nil {
		return err
	}
	if sc.Env, err = core.ParseEnvironment(env); err != nil {
		return err
	}
	if sc.Workload, err = core.ParseWorkload(workload); err != nil {
		return err
	}
	if nagle {
		// core.Run sets TCP_NODELAY on the server (the paper's first
		// tuning) unless an override is present; an override with
		// NoDelay unset puts the untuned behavior back.
		sc.ServerOverride = &httpserver.Config{Profile: sc.Server}
	}

	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithCapture()}
	if timeline != "" || waterfall || blame {
		opts = append(opts, core.WithTimeline())
	}
	if blame {
		opts = append(opts, core.WithBlame())
	}
	res, err := core.Run(sc, site, opts...)
	if err != nil {
		return err
	}

	if pcap != "" {
		f, err := os.Create(pcap)
		if err != nil {
			return err
		}
		if err := res.Capture.WritePcap(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tracedump: wrote %s (%d packets)\n", pcap, res.Stats.Packets)
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		if err := res.Timeline.WritePerfettoPath(f, res.Blame.PerfettoPath()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tracedump: wrote %s (%d events)\n", timeline, res.Timeline.Len())
	}
	if waterfall || blame {
		report.WriteWaterfall(os.Stdout, res.Timeline, res.Blame)
		if blame {
			report.BlameSummary(os.Stdout, res.Blame)
			fmt.Println()
			report.CriticalPath(os.Stdout, res.Blame)
		}
		return nil
	}
	if pcap != "" || timeline != "" {
		return nil
	}

	if xplot != "" {
		return res.Capture.WriteXplot(os.Stdout, xplot, sc.String())
	}
	if seq != "" {
		for _, p := range res.Capture.TimeSequence(seq) {
			fmt.Printf("%.6f %d %d %s\n", p.Time.Seconds(), p.SeqLo, p.SeqHi, p.Kind)
		}
		return nil
	}

	if err := res.Capture.Dump(os.Stdout); err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("\n%s\n", sc)
	fmt.Printf("packets: %d (%d c→s, %d s→c, %d retransmitted, %d dropped)\n",
		st.Packets, st.ClientToServer, st.ServerToClient, st.Retransmissions, st.Dropped)
	fmt.Printf("payload bytes: %d   overhead: %.1f%%   connections: %d\n",
		st.PayloadBytes, st.OverheadPct(), st.Connections)
	fmt.Printf("elapsed: %.3fs\n", res.Elapsed.Seconds())
	return nil
}
