// Command tracedump runs one scenario and prints its packet trace in a
// tcpdump-like format, plus the run summary — the workflow the authors
// used (tcpdump + tcpshow + xplot) to find implementation problems.
//
// Usage:
//
//	tracedump -server jigsaw -client pipelined -env WAN -workload reval
//	tracedump -client http10 -env LAN -seq client      # time-sequence points
//	tracedump -client serial -env WAN -xplot server    # xplot(1) file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

func main() {
	server := flag.String("server", "apache", "server profile: jigsaw, apache")
	client := flag.String("client", "pipelined", "client mode: http10, serial, pipelined, deflate, netscape, msie")
	env := flag.String("env", "LAN", "network environment: LAN, WAN, PPP")
	workload := flag.String("workload", "first", "workload: first, reval")
	seed := flag.Uint64("seed", 1, "run seed")
	seq := flag.String("seq", "", "print time-sequence points for this host (client/server) instead of the dump")
	xplot := flag.String("xplot", "", "write an xplot(1) file of this host's send direction instead of the dump")
	flag.Parse()

	if err := run(*server, *client, *env, *workload, *seed, *seq, *xplot); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(server, client, env, workload string, seed uint64, seq, xplot string) error {
	sc := core.Scenario{Seed: seed}
	switch strings.ToLower(server) {
	case "jigsaw":
		sc.Server = httpserver.ProfileJigsaw
	case "apache":
		sc.Server = httpserver.ProfileApache
	default:
		return fmt.Errorf("unknown server %q", server)
	}
	switch strings.ToLower(client) {
	case "http10":
		sc.Client = httpclient.ModeHTTP10
	case "serial":
		sc.Client = httpclient.ModeHTTP11Serial
	case "pipelined":
		sc.Client = httpclient.ModeHTTP11Pipelined
	case "deflate":
		sc.Client = httpclient.ModeHTTP11PipelinedDeflate
	case "netscape":
		sc.Client = httpclient.ModeNetscape
	case "msie":
		sc.Client = httpclient.ModeMSIE
	default:
		return fmt.Errorf("unknown client %q", client)
	}
	switch strings.ToUpper(env) {
	case "LAN":
		sc.Env = netem.LAN
	case "WAN":
		sc.Env = netem.WAN
	case "PPP":
		sc.Env = netem.PPP
	default:
		return fmt.Errorf("unknown environment %q", env)
	}
	switch strings.ToLower(workload) {
	case "first":
		sc.Workload = httpclient.FirstTime
	case "reval", "revalidate":
		sc.Workload = httpclient.Revalidate
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}

	site, err := core.DefaultSite()
	if err != nil {
		return err
	}
	res, err := core.RunCaptured(sc, site)
	if err != nil {
		return err
	}

	if xplot != "" {
		return res.Capture.WriteXplot(os.Stdout, xplot, sc.String())
	}
	if seq != "" {
		for _, p := range res.Capture.TimeSequence(seq) {
			fmt.Printf("%.6f %d %d %s\n", p.Time.Seconds(), p.SeqLo, p.SeqHi, p.Kind)
		}
		return nil
	}

	if err := res.Capture.Dump(os.Stdout); err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("\n%s\n", sc)
	fmt.Printf("packets: %d (%d c→s, %d s→c, %d retransmitted, %d dropped)\n",
		st.Packets, st.ClientToServer, st.ServerToClient, st.Retransmissions, st.Dropped)
	fmt.Printf("payload bytes: %d   overhead: %.1f%%   connections: %d\n",
		st.PayloadBytes, st.OverheadPct(), st.Connections)
	fmt.Printf("elapsed: %.3fs\n", res.Elapsed.Seconds())
	return nil
}
