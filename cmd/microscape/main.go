// Command microscape synthesizes the paper's test web site and writes it
// to a directory: the ~42 KB HTML page, the 42 GIF images with the
// paper's size distribution, plus (optionally) the converted PNG/MNG
// images and the CSSified page variant.
//
// Usage:
//
//	microscape -out ./site            # HTML + GIFs
//	microscape -out ./site -convert   # also PNG/MNG conversions
//	microscape -out ./site -cssified  # also the CSS-replacement variant
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gifenc"
	"repro/internal/pngenc"
	"repro/internal/webgen"
)

func main() {
	out := flag.String("out", "microscape-site", "output directory")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	tagCase := flag.String("tagcase", "lower", "HTML tag case: lower, mixed, upper")
	convert := flag.Bool("convert", false, "also write PNG/MNG conversions")
	cssified := flag.Bool("cssified", false, "also write the CSSified variant")
	flag.Parse()

	if err := run(*out, *seed, *tagCase, *convert, *cssified); err != nil {
		fmt.Fprintln(os.Stderr, "microscape:", err)
		os.Exit(1)
	}
}

func run(out string, seed uint64, tagCase string, convert, cssified bool) error {
	var tc webgen.TagCase
	switch tagCase {
	case "lower":
		tc = webgen.TagsLower
	case "mixed":
		tc = webgen.TagsMixed
	case "upper":
		tc = webgen.TagsUpper
	default:
		return fmt.Errorf("unknown tag case %q", tagCase)
	}
	site, err := webgen.Microscape(webgen.Options{Seed: seed, TagCase: tc})
	if err != nil {
		return err
	}
	if err := writeSite(site, out); err != nil {
		return err
	}
	fmt.Printf("wrote %d objects (%d bytes) to %s\n", site.ObjectCount(), site.TotalBytes(), out)

	if convert {
		dir := filepath.Join(out, "converted")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		rep, err := site.ConvertImages()
		if err != nil {
			return err
		}
		for _, img := range site.Images {
			var data []byte
			var name string
			if img.Static() {
				name = strings.TrimSuffix(img.Spec.Name, ".gif") + ".png"
				data, err = pngenc.Encode(toPNG(img), pngenc.Options{})
			} else {
				name = strings.TrimSuffix(img.Spec.Name, ".gif") + ".mng"
				frames := make([]*pngenc.Image, len(img.Frames))
				delays := make([]int, len(img.Frames))
				for i, f := range img.Frames {
					frames[i] = toPNGImage(f.Image.W, f.Image.H, f.Image.Palette, f.Image.Pixels)
					delays[i] = f.DelayCS
				}
				data, err = pngenc.EncodeMNG(frames, delays, pngenc.Options{})
			}
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("converted: static GIF %d -> PNG %d bytes; animations %d -> MNG %d bytes\n",
			rep.StaticGIF, rep.StaticPNG, rep.AnimGIF, rep.AnimMNG)
	}

	if cssified {
		cs, err := site.CSSified(webgen.Options{Seed: seed, TagCase: tc})
		if err != nil {
			return err
		}
		dir := filepath.Join(out, "cssified")
		if err := writeSite(cs, dir); err != nil {
			return err
		}
		fmt.Printf("cssified variant: %d objects (%d bytes) in %s\n", cs.ObjectCount(), cs.TotalBytes(), dir)
	}
	return nil
}

func writeSite(site *webgen.Site, dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "images"), 0o755); err != nil {
		return err
	}
	for _, path := range site.Paths() {
		obj, _ := site.Object(path)
		name := path
		if name == "/" {
			name = "/index.html"
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(name, "/"))), obj.Body, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func toPNG(img *webgen.SynthImage) *pngenc.Image {
	g := img.FirstFrame()
	return toPNGImage(g.W, g.H, g.Palette, g.Pixels)
}

func toPNGImage(w, h int, pal []gifenc.Color, pixels []byte) *pngenc.Image {
	out := &pngenc.Image{W: w, H: h, Pixels: pixels}
	out.Palette = make([]pngenc.Color, len(pal))
	for i, c := range pal {
		out.Palette[i] = pngenc.Color{R: c.R, G: c.G, B: c.B}
	}
	return out
}
