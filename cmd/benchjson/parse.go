package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// SchemaVersion marks the snapshot layout for downstream consumers
// (perfdiff keys on it to recognise bench snapshots).
const SchemaVersion = "benchjson/1"

// Snapshot is one dated benchmark run. Metric maps serialise with keys
// in sorted order (encoding/json sorts map keys), so snapshots diff
// cleanly line-by-line and perfdiff sees a stable sample order.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Units maps every metric name appearing in Benchmarks to its unit,
	// derived from the repo's metric-naming convention.
	Units map[string]string `json:"units,omitempty"`
}

// Benchmark is one result line. NsPerOp carries the standard ns/op
// column; Metrics carries the custom b.ReportMetric values, keyed by
// unit name (e.g. "pipeline_first_pa").
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and collects every benchmark
// line plus the goos/goarch/cpu/pkg header into a Snapshot.
func Parse(r io.Reader, date string) (*Snapshot, error) {
	snap := &Snapshot{Date: date}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	snap.Schema = SchemaVersion
	snap.Units = map[string]string{"ns_per_op": "ns/op"}
	for _, b := range snap.Benchmarks {
		for name := range b.Metrics {
			snap.Units[name] = unitFor(name)
		}
	}
	return snap, nil
}

// stampEnv fills the snapshot's environment header from the running
// process, so perfdiff can warn when two snapshots being compared came
// from different machines or toolchains. Values the bench output itself
// carried (goos/goarch/cpu header lines) win; the Go version and
// GOMAXPROCS are always the converter's own, and the CPU model falls
// back to /proc/cpuinfo when the bench output had no cpu line.
func stampEnv(snap *Snapshot) {
	snap.GoVersion = runtime.Version()
	snap.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if snap.GOOS == "" {
		snap.GOOS = runtime.GOOS
	}
	if snap.GOARCH == "" {
		snap.GOARCH = runtime.GOARCH
	}
	if snap.CPU == "" {
		if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
			snap.CPU = cpuModelFrom(string(data))
		}
	}
}

// cpuModelFrom extracts the CPU model from /proc/cpuinfo content,
// covering the field names x86 ("model name"), older ARM ("Processor"),
// and MIPS ("cpu model") use. Empty when no such field exists.
func cpuModelFrom(data string) string {
	for _, line := range strings.Split(data, "\n") {
		name, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(name) {
		case "model name", "Processor", "cpu model":
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// unitFor derives a metric's unit from the suffix convention
// bench_test.go uses for b.ReportMetric names.
func unitFor(metric string) string {
	switch {
	case metric == "ns_per_op":
		return "ns/op"
	// _per_sec must precede the plain _sec suffix it also matches.
	case strings.HasSuffix(metric, "_per_sec"):
		return "1/s"
	case strings.HasSuffix(metric, "_per_packet"):
		return "per packet"
	case strings.HasSuffix(metric, "_pa"):
		return "packets"
	case strings.HasSuffix(metric, "_sec"):
		return "seconds"
	case strings.HasSuffix(metric, "_bytes"):
		return "bytes"
	case strings.HasSuffix(metric, "_pct") || strings.HasSuffix(metric, "_ratio"):
		return "ratio"
	}
	return ""
}

// parseLine handles one result line of the form
//
//	BenchmarkName-8  3  123 ns/op  4.5 custom_metric  0 B/op  0 allocs/op
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	b := Benchmark{Procs: 1}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, nil
}
