// Command benchjson converts `go test -bench` output into a dated JSON
// snapshot so the repo can accumulate a benchmark trajectory over time.
// The custom metrics attached by bench_test.go (packets, virtual
// seconds, byte totals per table row) become named fields, making
// regressions in the reproduced quantities diffable:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchjson -o BENCH_$(date +%F).json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the snapshot")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	snap, err := Parse(os.Stdin, *date)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	stampEnv(snap)
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
