package main

import (
	"runtime"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1Environments-8   	       1	  52034188 ns/op	         0.000210 LAN_probe_sec	         0.1744 WAN_probe_sec
BenchmarkTable4JigsawLAN-8      	       1	 123456789 ns/op	       181.0 pipeline_first_pa	         0.4900 pipeline_first_sec
BenchmarkSiteSynthesis          	      12	   9876543 ns/op
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench), "2026-08-05")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Date != "2026-08-05" || snap.GOOS != "linux" || snap.GOARCH != "amd64" || snap.Package != "repro" {
		t.Fatalf("header wrong: %+v", snap)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "Table1Environments" || b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("first benchmark wrong: %+v", b)
	}
	if b.NsPerOp != 52034188 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.Metrics["LAN_probe_sec"] != 0.000210 || b.Metrics["WAN_probe_sec"] != 0.1744 {
		t.Fatalf("custom metrics wrong: %+v", b.Metrics)
	}
	if got := snap.Benchmarks[1].Metrics["pipeline_first_pa"]; got != 181 {
		t.Fatalf("pipeline_first_pa = %v", got)
	}
	// No procs suffix: GOMAXPROCS defaults to 1 and the name is untouched.
	if b2 := snap.Benchmarks[2]; b2.Name != "SiteSynthesis" || b2.Procs != 1 || b2.Iterations != 12 || b2.Metrics != nil {
		t.Fatalf("third benchmark wrong: %+v", b2)
	}
	if snap.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", snap.Schema, SchemaVersion)
	}
	wantUnits := map[string]string{
		"ns_per_op":          "ns/op",
		"LAN_probe_sec":      "seconds",
		"WAN_probe_sec":      "seconds",
		"pipeline_first_pa":  "packets",
		"pipeline_first_sec": "seconds",
	}
	if len(snap.Units) != len(wantUnits) {
		t.Fatalf("units = %v, want %v", snap.Units, wantUnits)
	}
	for k, v := range wantUnits {
		if snap.Units[k] != v {
			t.Errorf("units[%q] = %q, want %q", k, snap.Units[k], v)
		}
	}
}

func TestUnitFor(t *testing.T) {
	for in, want := range map[string]string{
		"http10_first_pa":   "packets",
		"best_sec":          "seconds",
		"anim_gif_bytes":    "bytes",
		"overhead_pct":      "ratio",
		"cache_hit_ratio":   "ratio",
		"ns_per_op":         "ns/op",
		"something_unusual": "",
	} {
		if got := unitFor(in); got != want {
			t.Errorf("unitFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n"), "d"); err == nil {
		t.Fatal("input with no benchmark lines accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-2 notanumber 5 ns/op\n"), "d"); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}

func TestStampEnv(t *testing.T) {
	snap := &Snapshot{}
	stampEnv(snap)
	if snap.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", snap.GoVersion, runtime.Version())
	}
	if snap.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", snap.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if snap.GOOS != runtime.GOOS || snap.GOARCH != runtime.GOARCH {
		t.Errorf("GOOS/GOARCH = %q/%q, want %q/%q", snap.GOOS, snap.GOARCH, runtime.GOOS, runtime.GOARCH)
	}

	// Fields the bench output already carried (goos/goarch header lines)
	// win over the stamping process's own values.
	snap = &Snapshot{GOOS: "plan9", GOARCH: "riscv64", CPU: "bespoke"}
	stampEnv(snap)
	if snap.GOOS != "plan9" || snap.GOARCH != "riscv64" || snap.CPU != "bespoke" {
		t.Errorf("stampEnv overwrote parsed fields: %+v", snap)
	}
}

func TestCPUModelFrom(t *testing.T) {
	x86 := "processor\t: 0\nvendor_id\t: GenuineIntel\nmodel name\t: Intel(R) Xeon(R) CPU E5-2690 v4 @ 2.60GHz\nmodel name\t: second entry ignored\n"
	if got := cpuModelFrom(x86); got != "Intel(R) Xeon(R) CPU E5-2690 v4 @ 2.60GHz" {
		t.Errorf("x86 model = %q", got)
	}
	arm := "Processor\t: ARMv7 Processor rev 4 (v7l)\nBogoMIPS\t: 38.40\n"
	if got := cpuModelFrom(arm); got != "ARMv7 Processor rev 4 (v7l)" {
		t.Errorf("arm model = %q", got)
	}
	mips := "system type\t: mt7621\ncpu model\t: MIPS 1004Kc V2.15\n"
	if got := cpuModelFrom(mips); got != "MIPS 1004Kc V2.15" {
		t.Errorf("mips model = %q", got)
	}
	if got := cpuModelFrom("no colon lines here\n"); got != "" {
		t.Errorf("garbage cpuinfo yielded %q, want empty", got)
	}
}
