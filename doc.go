// Package repro is a full reproduction of "Network Performance Effects of
// HTTP/1.1, CSS1, and PNG" (Nielsen, Gettys, Baird-Smith, Prud'hommeaux,
// Lie, Lilley — ACM SIGCOMM 1997) as a Go library.
//
// The public experiment API lives in internal/core; the substrates it
// composes are a deterministic discrete-event simulator (internal/sim), a
// TCP model (internal/tcpsim) over parameterized links (internal/netem),
// an HTTP/1.0+1.1 message layer (internal/httpmsg), the paper's client
// and servers (internal/httpclient, internal/httpserver), the Microscape
// test site (internal/webgen), and from-scratch DEFLATE/zlib, LZW,
// GIF, PNG/MNG, HTML, and CSS1 codecs (internal/flatez, internal/lzw,
// internal/gifenc, internal/pngenc, internal/htmlparse, internal/css).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the evaluation.
package repro
