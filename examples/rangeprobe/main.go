// Rangeprobe demonstrates the paper's "poor man's multiplexing": when a
// cached page is revisited after the site has been revised, the client
// can validate every object and simultaneously ask for just the first
// bytes of anything that changed (If-None-Match + Range), so that one
// large changed image cannot monopolize the pipelined connection ahead of
// the other objects' metadata.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

func main() {
	site, err := core.DefaultSite()
	if err != nil {
		log.Fatal(err)
	}
	revised, err := site.Revise(0.3, 9901+101)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Site revised: %d of %d objects changed (including the page)\n\n",
		revised.ChangedFrom(site), site.ObjectCount())

	for _, probe := range []int{0, 512} {
		cfg := httpclient.ModeHTTP11Pipelined.Config()
		cfg.RevalRangeProbe = probe
		sc := core.Scenario{
			Server:         httpserver.ProfileApache,
			Client:         cfg.Mode,
			Env:            netem.PPP,
			Workload:       httpclient.Revalidate,
			ReviseFraction: 0.3,
			Seed:           9900,
			ClientOverride: &cfg,
		}
		res, err := core.Run(sc, site)
		if err != nil {
			log.Fatal(err)
		}
		label := "conditional GET (full bodies inline)"
		if probe > 0 {
			label = fmt.Sprintf("conditional GET + %d-byte range probe", probe)
		}
		fmt.Printf("%-42s\n", label)
		fmt.Printf("  packets %d, bytes %d, 304s %d, 206s %d\n",
			res.Stats.Packets, res.Stats.PayloadBytes,
			res.Client.Responses304, res.Client.Responses206)
		fmt.Printf("  all object metadata by %6.2fs; everything complete by %6.2fs\n\n",
			res.Client.MetadataSeconds, res.Client.CompleteSeconds)
	}
	fmt.Println("Probing costs a few extra packets but delivers every object's")
	fmt.Println("metadata far sooner — the concurrency HTTP/1.0 browsers bought")
	fmt.Println("with parallel connections, achieved on a single pipeline.")
}
