// Compression reproduces the paper's transport-compression experiments:
// the deflate ratio on the Microscape HTML (including the tag-case
// effect), the single-GET modem comparison (deflate vs V.42bis), and the
// GIF→PNG / animated GIF→MNG conversions.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flatez"
	"repro/internal/httpserver"
	"repro/internal/lzw"
)

func main() {
	site, err := core.DefaultSite()
	if err != nil {
		log.Fatal(err)
	}

	html := site.HTML.Body
	deflated := flatez.Compress(html)
	fmt.Printf("Microscape HTML: %d bytes -> deflate %d bytes (ratio %.2f; paper: 42K -> 11K)\n",
		len(html), len(deflated), flatez.Ratio(html, deflated))

	modem := lzw.NewModemCompressor()
	bits := 0
	for off := 0; off < len(html); off += 512 {
		end := off + 512
		if end > len(html) {
			end = len(html)
		}
		bits += modem.CompressedBits(html[off:end])
	}
	fmt.Printf("V.42bis-style modem compression of the same page: ratio %.2f\n",
		float64(bits)/float64(8*len(html)))
	fmt.Println("(\"Deflate compression is more efficient than the data compression")
	fmt.Println(" algorithms used in modems.\")")

	fmt.Println("\nTag case vs deflate (paper: lower ≈ .27, mixed ≈ .35):")
	rows, err := core.TagCaseTable()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %6d -> %6d bytes  ratio %.3f\n", r.Label, r.HTMLBytes, r.Deflated, r.Ratio)
	}

	fmt.Println("\nSingle GET of the page over the 28.8k modem link:")
	mrows, err := core.Sweep{Runs: 1}.ModemTable(site, httpserver.ProfileApache)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range mrows {
		fmt.Printf("  %-52s %5.0f packets %7.2fs\n", r.Label, r.Packets, r.Seconds)
	}

	fmt.Println("\nImage format conversion:")
	rep, err := site.ConvertImages()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  40 static GIFs:  %6d -> %6d bytes as PNG  (paper: 103299 -> 92096)\n",
		rep.StaticGIF, rep.StaticPNG)
	fmt.Printf("  2 animations:    %6d -> %6d bytes as MNG  (paper: 24988 -> 16329)\n",
		rep.AnimGIF, rep.AnimMNG)
	grew := 0
	for _, c := range rep.Static {
		if c.Saved() < 0 {
			grew++
		}
	}
	fmt.Printf("  (%d small images grew under PNG, as the paper observed for the\n", grew)
	fmt.Println("   sub-200-byte, low-bit-depth category)")
}
