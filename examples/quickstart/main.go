// Quickstart: fetch the Microscape page once with HTTP/1.0 and once with
// pipelined HTTP/1.1 over the simulated WAN, and print the paper's core
// comparison — packets, bytes, elapsed time.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

func main() {
	site, err := core.DefaultSite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Microscape: %d objects, %d bytes (HTML %d + images %d)\n\n",
		site.ObjectCount(), site.TotalBytes(), len(site.HTML.Body),
		site.StaticImageBytes()+site.AnimationBytes())

	for _, mode := range []httpclient.Mode{httpclient.ModeHTTP10, httpclient.ModeHTTP11Pipelined} {
		sc := core.Scenario{
			Server:   httpserver.ProfileApache,
			Client:   mode,
			Env:      netem.WAN,
			Workload: httpclient.FirstTime,
			Seed:     1,
		}
		res, err := core.Run(sc, site)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %4d packets  %7d bytes  %6.2fs  (%d connections)\n",
			mode, res.Stats.Packets, res.Stats.PayloadBytes,
			res.Elapsed.Seconds(), res.Client.SocketsUsed)
	}
	fmt.Println("\nPipelined HTTP/1.1 fetches the same page with a fraction of the")
	fmt.Println("packets on a single connection — the paper's headline result.")
}
