// Pipelining walks through the paper's implementation-tuning story on the
// LAN revalidation workload (its Table 3 and the buffer-tuning section):
//
//  1. plain HTTP/1.0 with parallel connections;
//  2. naive persistent HTTP/1.1 — fewer packets, slower clock;
//  3. pipelining with only a flush timer — packets collapse, but the
//     timer stalls the first request;
//  4. the tuned client — explicit flush after the HTML request, 1024-byte
//     buffer, 50 ms timer, TCP_NODELAY.
//
// It also prints the server early-close trap: pipelining into a server
// that closes naively after N requests resets the connection.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

func run(label string, sc core.Scenario) {
	site, err := core.DefaultSite()
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(sc, site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-46s %4d packets  %6.2fs  sockets=%d resets=%d\n",
		label, res.Stats.Packets, res.Elapsed.Seconds(),
		res.Client.SocketsUsed, res.Client.Errors)
}

func main() {
	base := core.Scenario{
		Server:   httpserver.ProfileJigsaw,
		Env:      netem.LAN,
		Workload: httpclient.Revalidate,
		Seed:     1,
	}

	fmt.Println("LAN cache revalidation, 43 objects (the paper's Table 3 journey):")

	sc := base
	sc.Client = httpclient.ModeHTTP10
	run("1. HTTP/1.0, four parallel connections", sc)

	sc = base
	sc.Client = httpclient.ModeHTTP11Serial
	run("2. HTTP/1.1 persistent, serialized", sc)

	untuned := httpclient.ModeHTTP11Pipelined.Config()
	untuned.ExplicitFirstFlush = false
	untuned.FlushTimeout = time.Second
	sc = base
	sc.Client = httpclient.ModeHTTP11Pipelined
	sc.ClientOverride = &untuned
	run("3. pipelined, 1s flush timer only", sc)

	sc = base
	sc.Client = httpclient.ModeHTTP11Pipelined
	run("4. pipelined, tuned (explicit flush, NODELAY)", sc)

	fmt.Println("\nThe early-close trap (WAN first-time, server limited to 5 requests/conn):")
	srv := httpserver.Config{
		Profile:            httpserver.ProfileApache,
		MaxRequestsPerConn: 5,
		NoDelay:            true,
	}
	sc = core.Scenario{
		Server:         httpserver.ProfileApache,
		Client:         httpclient.ModeHTTP11Pipelined,
		Env:            netem.WAN,
		Workload:       httpclient.FirstTime,
		Seed:           1,
		ServerOverride: &srv,
	}
	run("graceful independent half-close", sc)

	srvNaive := srv
	srvNaive.NaiveClose = true
	sc.ServerOverride = &srvNaive
	run("naive close of both halves (RST, data loss)", sc)
}
