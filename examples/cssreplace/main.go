// Cssreplace reproduces the paper's CSS1 content experiment: Figure 1's
// "solutions" banner (a 682-byte GIF replaced by ~150 bytes of HTML+CSS),
// the whole-page replacement analysis, and the network effect of serving
// the CSSified page variant.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/css"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

func main() {
	// Figure 1, verbatim from the paper.
	fig := webgen.FigureOneReplacement()
	sheet := css.MustParse(`
		P.banner {
		  color: white;
		  background: #FC0;
		  font: bold oblique 20px sans-serif;
		  padding: 0.2em 10em 0.2em 1em;
		}`)
	fmt.Println("Figure 1 - replacing the \"solutions\" GIF with HTML+CSS:")
	fmt.Println(sheet.String())
	fmt.Printf("  markup: %q\n", fig.Markup)
	fmt.Printf("  GIF %d bytes -> HTML+CSS %d bytes (%.1fx smaller)\n\n",
		fig.GIFBytes, fig.CSSBytes(), float64(fig.GIFBytes)/float64(fig.CSSBytes()))

	site, err := core.DefaultSite()
	if err != nil {
		log.Fatal(err)
	}
	rep := site.CSSReplacements()
	fmt.Printf("Whole page: %d of 42 images replaceable by CSS\n", len(rep.Replacements))
	fmt.Printf("  image bytes removed: %d, HTML+CSS added: %d, net saving: %d bytes\n",
		rep.GIFBytesRemoved, rep.CSSBytesAdded, rep.NetSavings())
	fmt.Printf("  HTTP requests saved: %d of 43\n\n", rep.RequestsSaved)

	cssified, err := site.CSSified(webgen.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Serving both variants over PPP (pipelined HTTP/1.1, first visit):\n")
	for _, v := range []struct {
		label string
		s     *webgen.Site
	}{
		{"original page (43 objects)", site},
		{fmt.Sprintf("CSSified page (%d objects)", cssified.ObjectCount()), cssified},
	} {
		sc := core.Scenario{
			Server:   httpserver.ProfileApache,
			Client:   httpclient.ModeHTTP11Pipelined,
			Env:      netem.PPP,
			Workload: httpclient.FirstTime,
			Seed:     1,
		}
		res, err := core.Run(sc, v.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %4d packets  %7d bytes  %6.1fs\n",
			v.label, res.Stats.Packets, res.Stats.PayloadBytes, res.Elapsed.Seconds())
	}
	fmt.Println("\n\"Universal use of style sheets ... would cause a very significant")
	fmt.Println("reduction in network traffic.\"")
}
